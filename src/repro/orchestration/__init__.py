"""Sweep orchestration: durable results, pluggable pools, a daemon, CLI.

This package turns the in-process :class:`~repro.sim.runner.
ExperimentRunner` into a batch system in four layers:

* :mod:`~repro.orchestration.serialize` — lossless JSON round-trips
  for run artifacts and stable content-addressed task keys;
* :mod:`~repro.orchestration.store` — the on-disk
  :class:`ResultStore` (atomic writes, per-shard append-only index,
  meta-only probes, self-healing on corruption);
* :mod:`~repro.orchestration.pools` — where tasks run: the
  :class:`Pool` backends (``warm`` persistent workers, ``spawn``
  per-task processes, ``ssh`` remote fan-out, ``serial`` inline) plus
  the wire types they share;
* :mod:`~repro.orchestration.executor` — the :class:`SweepExecutor`
  planning (group × scheme × geometry) tasks against the store and
  sharding them across a pool, and :func:`orchestrated_runner`, the
  one-liner that wires a runner to both.

:mod:`~repro.orchestration.serve` runs it as a service — the
``repro serve`` HTTP job queue (see ``docs/distributed.md``) — and
:mod:`~repro.orchestration.cli` exposes all of it as the ``repro``
console script (``python -m repro`` from a source checkout).
"""

from repro.orchestration.executor import (
    SweepExecutor,
    orchestrated_runner,
    resolve_jobs,
)
from repro.orchestration.pools import (
    Pool,
    PoolResult,
    PoolTask,
    SerialPool,
    SpawnPool,
    SSHPool,
    SweepTaskError,
    WarmPool,
    resolve_pool,
)
from repro.orchestration.serialize import (
    SCHEMA_VERSION,
    alone_task_key,
    group_task_key,
    task_key,
)
from repro.orchestration.store import ResultStore, default_store_path

__all__ = [
    "SCHEMA_VERSION",
    "Pool",
    "PoolResult",
    "PoolTask",
    "ResultStore",
    "SSHPool",
    "SerialPool",
    "SpawnPool",
    "SweepExecutor",
    "SweepTaskError",
    "WarmPool",
    "alone_task_key",
    "default_store_path",
    "group_task_key",
    "orchestrated_runner",
    "resolve_jobs",
    "resolve_pool",
    "task_key",
]
