"""``repro`` — the command-line front end of the reproduction.

Five subcommands drive the whole evaluation through the orchestrator:

* ``repro sweep``  — run a (group × scheme) cross-product in parallel,
  persisting every result; re-running is a cache-hit no-op.
* ``repro alone``  — profile benchmarks in isolation (Table 3).
* ``repro report`` — render the figure tables from stored artifacts
  only (never simulates; tells you what to sweep if results are
  missing).
* ``repro bench``  — time the simulation engine on the fixed workload
  matrix, write ``BENCH_sim_throughput.json`` and (with ``--check``)
  fail on throughput regressions against a committed baseline (see
  ``docs/performance.md``).
* ``repro clean``  — drop the store.

Every run-shaped command accepts ``--cores``, ``--refs-per-core``,
``--groups``, ``--policies`` and ``--threshold`` to select the slice
of the evaluation, plus ``--store`` and ``--jobs`` for the
orchestration knobs (``$REPRO_STORE`` / ``$REPRO_JOBS`` set the
defaults).  Installed as a console script by ``setup.py``;
``python -m repro`` is the equivalent for source checkouts.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.bench.harness import BENCH_FILENAME
from repro.metrics.speedup import geometric_mean
from repro.orchestration.executor import SweepExecutor, resolve_jobs
from repro.orchestration.serialize import alone_task_key, group_task_key
from repro.orchestration.store import ResultStore, default_store_path
from repro.sim.config import SystemConfig, scaled_four_core, scaled_two_core
from repro.sim.runner import ALL_POLICIES, ExperimentRunner
from repro.workloads.groups import group_benchmarks, group_names
from repro.workloads.profiles import BENCHMARK_PROFILES, classify_mpki

#: the three normalised tables the figures are built from
_METRICS = ("speedup", "dynamic", "static")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro`` console script; returns exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)
    try:
        return options.handler(options)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Cooperative Partitioning (HPCA 2012) evaluation.",
    )
    from repro import __version__

    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--store", default=None, metavar="DIR",
        help="result store directory (default: $REPRO_STORE or .repro/store)",
    )

    selection = argparse.ArgumentParser(add_help=False)
    selection.add_argument(
        "--cores", type=int, choices=(2, 4), default=2,
        help="system geometry: 2-core (8-way 2MB-class L2) or 4-core (16-way)",
    )
    selection.add_argument(
        "--refs-per-core", type=int, default=None, metavar="N",
        help="measured references per core (default: 60000 for 2-core, "
             "50000 for 4-core — the benchmark harness's scales, so a "
             "default sweep pre-populates the figures' cache)",
    )
    selection.add_argument(
        "--groups", default=None, metavar="SPEC",
        help="comma-separated Table 4 group names (e.g. G2-1,G2-8) or a "
             "number N meaning the first N groups; default: all 14",
    )
    selection.add_argument(
        "--policies", default=None, metavar="LIST",
        help=f"comma-separated schemes out of {','.join(ALL_POLICIES)}; default: all",
    )
    selection.add_argument(
        "--threshold", type=float, default=None, metavar="T",
        help="override the takeover threshold (paper default 0.05)",
    )

    sweep = commands.add_parser(
        "sweep", parents=[common, selection],
        help="run a group x scheme sweep in parallel and print the figure tables",
    )
    sweep.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_JOBS or CPU count)",
    )
    sweep.add_argument(
        "--metric", choices=(*_METRICS, "all"), default="speedup",
        help="which normalised table(s) to print (default: speedup)",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    alone = commands.add_parser(
        "alone", parents=[common, selection],
        help="profile benchmarks in isolation (Table 3's MPKI classification)",
    )
    alone.add_argument(
        "benchmarks", nargs="*", metavar="BENCHMARK",
        help="benchmarks to profile (default: all 19)",
    )
    alone.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_JOBS or CPU count)",
    )
    alone.set_defaults(handler=_cmd_alone)

    report = commands.add_parser(
        "report", parents=[common, selection],
        help="print the figure tables from stored results (never simulates)",
    )
    report.set_defaults(handler=_cmd_report)

    bench = commands.add_parser(
        "bench",
        help="measure engine throughput (refs/s) on the fixed workload matrix",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smoke-sized matrix (two cases, short traces) for CI",
    )
    bench.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="timed runs per case, best kept (default: 3, 2 with --quick)",
    )
    bench.add_argument(
        "--output", default=None, metavar="FILE",
        help=f"where to write the payload (default: ./{BENCH_FILENAME}; "
             f"'-' skips writing)",
    )
    bench.add_argument(
        "--baseline", default="benchmarks/perf/baseline.json", metavar="FILE",
        help="pre-overhaul engine payload to report the speedup against "
             "(default: benchmarks/perf/baseline.json; skipped if missing)",
    )
    bench.add_argument(
        "--check", default=None, metavar="FILE",
        help="compare against a committed bench payload and exit non-zero "
             "on any regression beyond --tolerance",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.20, metavar="F",
        help="allowed fractional throughput drop for --check (default 0.20)",
    )
    bench.set_defaults(handler=_cmd_bench)

    clean = commands.add_parser(
        "clean", parents=[common], help="delete every stored artifact"
    )
    clean.set_defaults(handler=_cmd_clean)
    return parser


# ----------------------------------------------------------------------
# Selection helpers
# ----------------------------------------------------------------------
def _config_from(options: argparse.Namespace) -> SystemConfig:
    refs = options.refs_per_core
    if refs is None:
        # Match benchmarks/conftest.py (60000, and 5/6 of it for the
        # four-core sweeps) so `repro sweep` and the figure drivers
        # share task keys.
        refs = 60_000 if options.cores == 2 else 50_000
    if refs <= 0:
        raise SystemExit(f"--refs-per-core must be positive, got {refs}")
    factory = scaled_two_core if options.cores == 2 else scaled_four_core
    config = factory(refs_per_core=refs)
    if options.threshold is not None:
        config = config.with_threshold(options.threshold)
    return config


def _groups_from(options: argparse.Namespace) -> list[str]:
    names = group_names(options.cores)
    spec = options.groups
    if not spec:
        return names
    try:
        count = int(spec)
    except ValueError:
        chosen = [token.strip() for token in spec.split(",") if token.strip()]
        unknown = [g for g in chosen if g not in names]
        if unknown:
            raise SystemExit(
                f"unknown group(s) {', '.join(unknown)} for --cores "
                f"{options.cores}; valid: {', '.join(names)}"
            )
        return chosen
    if count <= 0:
        raise SystemExit(f"--groups must name groups or a positive count, got {count}")
    return names[:count]


def _policies_from(options: argparse.Namespace) -> tuple[str, ...]:
    spec = options.policies
    if not spec:
        return ALL_POLICIES
    chosen = tuple(token.strip() for token in spec.split(",") if token.strip())
    unknown = [p for p in chosen if p not in ALL_POLICIES]
    if unknown:
        raise SystemExit(
            f"unknown polic{'ies' if len(unknown) > 1 else 'y'} "
            f"{', '.join(unknown)}; valid: {', '.join(ALL_POLICIES)}"
        )
    return chosen


def _store_from(options: argparse.Namespace) -> ResultStore:
    return ResultStore(options.store if options.store else default_store_path())


def _progress(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------
def _print_table(
    title: str,
    rows: dict[str, dict[str, float]],
    policies: Sequence[str],
    average: dict[str, float],
) -> None:
    print(f"\n=== {title} ===")
    print(f"{'group':<8}" + "".join(f"{p:>14}" for p in policies))
    for group, row in rows.items():
        print(f"{group:<8}" + "".join(f"{row[p]:>14.3f}" for p in policies))
    print(f"{'AVG':<8}" + "".join(f"{average[p]:>14.3f}" for p in policies))


def _render_tables(
    runner: ExperimentRunner,
    results: dict,
    config: SystemConfig,
    policies: Sequence[str],
    metrics: Sequence[str],
) -> None:
    baseline = "fair_share" if "fair_share" in policies else policies[0]
    titles = {
        "speedup": f"weighted speedup (normalised to {baseline})",
        "dynamic": f"dynamic energy per kilo-instruction (normalised to {baseline})",
        "static": f"static leakage power (normalised to {baseline})",
    }
    for metric in metrics:
        if metric == "speedup":
            table = runner.normalized_weighted_speedup(results, config, baseline)
        else:
            table = runner.normalized_energy(results, metric, baseline)
        average = {
            policy: geometric_mean([table[group][policy] for group in table])
            for policy in policies
        }
        _print_table(
            f"{config.n_cores}-core {titles[metric]}", table, policies, average
        )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_sweep(options: argparse.Namespace) -> int:
    config = _config_from(options)
    groups = _groups_from(options)
    policies = _policies_from(options)
    store = _store_from(options)
    executor = SweepExecutor(
        store, resolve_jobs(options.jobs), progress=_progress
    )
    started = time.perf_counter()
    tasks = [(group, policy, config) for group in groups for policy in policies]
    computed, cached = executor.prefetch(tasks)
    # Assemble directly through the runner: the prefetch above already
    # materialised every artifact, so executor.sweep()'s own prefetch
    # pass would only re-probe the store.
    results = {
        group: {
            policy: executor.runner.run_group(group, config, policy)
            for policy in policies
        }
        for group in groups
    }
    elapsed = time.perf_counter() - started
    metrics = _METRICS if options.metric == "all" else (options.metric,)
    _render_tables(executor.runner, results, config, policies, metrics)
    print(
        f"\n{len(tasks)} group runs over {len(groups)} groups x "
        f"{len(policies)} schemes; {computed} tasks computed, {cached} "
        f"cached in {store.root} (alone-run dependencies included; "
        f"{elapsed:.1f}s, {executor.max_workers} workers)"
    )
    return 0


def _cmd_alone(options: argparse.Namespace) -> int:
    config = _config_from(options).alone()
    names = options.benchmarks or sorted(BENCHMARK_PROFILES)
    unknown = [name for name in names if name not in BENCHMARK_PROFILES]
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s) {', '.join(unknown)}; valid: "
            f"{', '.join(sorted(BENCHMARK_PROFILES))}"
        )
    store = _store_from(options)
    executor = SweepExecutor(
        store, resolve_jobs(options.jobs), progress=_progress
    )
    results = executor.alone_many(config, names)
    print(f"\n=== alone runs on {config.l2.describe()} ===")
    print(f"{'benchmark':<12}{'paper MPKI':>12}{'measured':>12}{'IPC':>8}{'class':>9}")
    for name in names:
        result = results[name]
        profile = BENCHMARK_PROFILES[name]
        print(
            f"{name:<12}{profile.mpki:>12.2f}{result.mpki:>12.2f}"
            f"{result.ipc:>8.3f}{classify_mpki(result.mpki).value:>9}"
        )
    return 0


def _cmd_report(options: argparse.Namespace) -> int:
    config = _config_from(options)
    groups = _groups_from(options)
    policies = _policies_from(options)
    store = _store_from(options)
    # Validate with get(), not has(): a corrupt artifact exists on disk
    # but reads as a miss, and report must refuse rather than silently
    # fall back to simulating it.
    missing: list[str] = []
    for group in groups:
        for policy in policies:
            if store.get(group_task_key(config, group, policy)) is None:
                missing.append(f"{group}/{policy}")
        for benchmark in group_benchmarks(group):
            if store.get(alone_task_key(config, benchmark)) is None:
                missing.append(f"alone/{benchmark}")
    if missing:
        shown = ", ".join(sorted(set(missing))[:10])
        print(
            f"{len(set(missing))} result(s) missing from {store.root} "
            f"({shown}{', ...' if len(set(missing)) > 10 else ''}); "
            f"run the matching `repro sweep` first",
            file=sys.stderr,
        )
        return 1
    runner = ExperimentRunner(store=store)
    results = {
        group: {policy: runner.run_group(group, config, policy) for policy in policies}
        for group in groups
    }
    _render_tables(runner, results, config, policies, _METRICS)
    return 0


def _cmd_bench(options: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench.harness import (
        bench_matrix,
        compare_to_baseline,
        load_payload,
        run_benchmarks,
        speedup_over,
        write_payload,
    )

    repeats = options.repeats
    if repeats is None:
        repeats = 2 if options.quick else 3
    if repeats <= 0:
        raise SystemExit(f"--repeats must be positive, got {repeats}")
    if not 0.0 <= options.tolerance < 1.0:
        raise SystemExit(f"--tolerance must be in [0, 1), got {options.tolerance}")
    cases = bench_matrix(quick=options.quick)
    print(f"timing {len(cases)} cases, best of {repeats} runs each:")
    payload = run_benchmarks(cases, repeats=repeats, progress=print)
    print(f"aggregate: {payload['aggregate_refs_per_sec']:,.0f} refs/s (geomean)")

    if options.baseline and Path(options.baseline).exists():
        baseline = load_payload(options.baseline)
        speedup = speedup_over(payload, baseline)
        if speedup is not None:
            print(
                f"speedup vs {baseline.get('engine', 'baseline')}: "
                f"{speedup:.2f}x (geomean over shared cases)"
            )

    output = options.output if options.output is not None else BENCH_FILENAME
    if output != "-":
        write_payload(payload, output)
        print(f"wrote {output}")

    if options.check:
        reference = load_payload(options.check)
        reference_names = {case["name"] for case in reference.get("cases", [])}
        shared = [
            case for case in payload["cases"] if case["name"] in reference_names
        ]
        if not shared:
            print(
                f"--check: no cases shared with {options.check}; "
                f"nothing was verified",
                file=sys.stderr,
            )
            return 1
        regressions = compare_to_baseline(payload, reference, options.tolerance)
        if regressions:
            print(f"\nthroughput regression vs {options.check}:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"no regression vs {options.check} (tolerance {options.tolerance:.0%})")
    return 0


def _cmd_clean(options: argparse.Namespace) -> int:
    store = _store_from(options)
    removed = store.clean()
    print(f"removed {removed} artifact(s) from {store.root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
