"""``repro`` — the command-line front end of the reproduction.

Eight subcommands drive the whole evaluation through the orchestrator:

* ``repro sweep``    — run a (group × scheme) cross-product in
  parallel, persisting every result; re-running is a cache-hit no-op.
  ``--spec experiments.json`` instead runs an explicit JSON list of
  serialised :class:`~repro.experiment.Experiment` specs (mixed
  alone/group/scenario runs welcome) through the store-backed
  executor.  ``--dry-run`` prints the planned task list with per-task
  store hit/miss status and runs nothing.
* ``repro alone``    — profile benchmarks in isolation (Table 3).
* ``repro report``   — render the figure tables from stored artifacts
  only (never simulates; tells you what to sweep if results are
  missing).  ``--format {table,json,csv}`` makes the output
  machine-readable.
* ``repro scenario`` — run a time-varying schedule (consolidation,
  arrival or phase preset, or a ``--spec`` JSON file) under the
  selected schemes and print the recorded timeline plus a comparison
  against the matching static run.  ``--suite {quick,full}`` instead
  drives the committed scenario corpus through the differential
  invariant harness — every selected policy × governor combination,
  exiting non-zero on any violation (see ``docs/scenarios.md``).
* ``repro bench``    — time the simulation engine on the fixed
  workload matrix, write ``BENCH_sim_throughput.json`` and (with
  ``--check``) fail on throughput regressions against a committed
  baseline (see ``docs/performance.md``).  ``--sweep`` instead times
  the orchestration layer — tasks/s of a many-small-task sweep on the
  warm vs spawn pools plus the cached-resume path — writing
  ``BENCH_sweep_throughput.json``.
* ``repro serve``    — run the sweep-as-a-service daemon: accept spec
  JSON over HTTP, schedule jobs against the store, stream progress,
  and survive restarts via resume-from-store (see
  ``docs/distributed.md``).
* ``repro clean``    — drop the store.
* ``repro check``    — run the project-invariant static analysis
  (determinism/hot-path/concurrency rules, ``# repro: noqa[...]``
  suppressions, the committed ``analysis/baseline.json``; see
  ``docs/static-analysis.md``).

Every run-shaped command accepts ``--cores``, ``--refs-per-core``,
``--groups``, ``--policies`` and ``--threshold`` to select the slice
of the evaluation, ``--governor``/``--governor-param`` to run it
under a DVFS governor (see ``docs/energy.md``), plus ``--store``,
``--jobs``, ``--pool`` and ``--hosts`` for the orchestration knobs
(``$REPRO_STORE`` / ``$REPRO_JOBS`` / ``$REPRO_POOL`` /
``$REPRO_HOSTS`` set the defaults; see ``docs/distributed.md`` for
the pool backends).  Installed as a console script by ``setup.py``;
``python -m repro`` is the equivalent for source checkouts.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.analysis.cli import add_check_arguments, cmd_check
from repro.bench.harness import BENCH_FILENAME
from repro.experiment import Experiment
from repro.metrics.speedup import geometric_mean
from repro.orchestration.executor import SweepExecutor, resolve_jobs
from repro.orchestration.store import ResultStore, default_store_path
from repro.sim.config import SystemConfig, scaled_four_core, scaled_two_core
from repro.sim.runner import ALL_POLICIES, AloneResult, ExperimentRunner
from repro.workloads.groups import group_benchmarks, group_names
from repro.workloads.profiles import BENCHMARK_PROFILES, classify_mpki

#: the three normalised tables the figures are built from
_METRICS = ("speedup", "dynamic", "static")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro`` console script; returns exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)
    _apply_obs(options)
    try:
        code = options.handler(options)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    _finish_obs(options)
    return code


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Cooperative Partitioning (HPCA 2012) evaluation.",
    )
    from repro import __version__

    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--store", default=None, metavar="DIR",
        help="result store directory (default: $REPRO_STORE or .repro/store)",
    )

    pooling = argparse.ArgumentParser(add_help=False)
    pooling.add_argument(
        "--pool", default=None, metavar="NAME",
        choices=("warm", "spawn", "ssh", "serial"),
        help="execution pool backend: warm (persistent workers; the "
             "default), spawn (one process per task), ssh (remote "
             "fan-out over --hosts) or serial (inline); default: "
             "$REPRO_POOL, or ssh when hosts are configured",
    )
    pooling.add_argument(
        "--hosts", default=None, metavar="LIST",
        help="comma-separated ssh hosts for --pool ssh (the name "
             "'local' runs the same protocol in a local subprocess); "
             "default: $REPRO_HOSTS",
    )

    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record hierarchical trace spans (sweep/task/run/epoch) and "
             "write the merged trace to FILE on exit — Chrome/Perfetto "
             "JSON when FILE ends in .json, JSONL otherwise (convert "
             "with `repro trace view`); workers inherit via $REPRO_TRACE",
    )
    obs_flags.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="collect registry metrics and write a Prometheus text dump "
             "to FILE on exit ('-' prints to stdout); workers inherit "
             "via $REPRO_METRICS",
    )

    quiet_flag = argparse.ArgumentParser(add_help=False)
    quiet_flag.add_argument(
        "--quiet", action="store_true",
        help="suppress progress lines on stderr (also $REPRO_QUIET); "
             "result tables still print to stdout",
    )

    selection = argparse.ArgumentParser(add_help=False)
    selection.add_argument(
        "--cores", type=int, choices=(2, 4), default=2,
        help="system geometry: 2-core (8-way 2MB-class L2) or 4-core (16-way)",
    )
    selection.add_argument(
        "--refs-per-core", type=int, default=None, metavar="N",
        help="measured references per core (default: 60000 for 2-core, "
             "50000 for 4-core — the benchmark harness's scales, so a "
             "default sweep pre-populates the figures' cache)",
    )
    selection.add_argument(
        "--groups", default=None, metavar="SPEC",
        help="comma-separated Table 4 group names (e.g. G2-1,G2-8) or a "
             "number N meaning the first N groups; default: all 14",
    )
    selection.add_argument(
        "--policies", default=None, metavar="LIST",
        help=f"comma-separated schemes out of {','.join(ALL_POLICIES)}; default: all",
    )
    selection.add_argument(
        "--threshold", type=float, default=None, metavar="T",
        help="override the takeover threshold (paper default 0.05)",
    )
    selection.add_argument(
        "--governor", default=None, metavar="NAME",
        help="run group/scenario simulations under a DVFS governor "
             "(fixed, ondemand, coordinated, or a registered third-party "
             "name); default: none — the nominal-frequency machine",
    )
    selection.add_argument(
        "--governor-param", action="append", default=None,
        metavar="KEY=VALUE",
        help="governor parameter binding, repeatable (e.g. "
             "--governor coordinated --governor-param qos_slowdown=0.1); "
             "values parse as JSON, falling back to plain strings",
    )

    sweep = commands.add_parser(
        "sweep", parents=[common, selection, pooling, obs_flags, quiet_flag],
        help="run a group x scheme sweep in parallel and print the figure tables",
    )
    sweep.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_JOBS or CPU count)",
    )
    sweep.add_argument(
        "--engine", default=None, metavar="NAME",
        choices=("auto", "python", "batched", "compiled"),
        help="execution backend every task (workers included) runs on "
             "(default: $REPRO_ENGINE, then auto); every backend is "
             "bit-identical, this only changes speed",
    )
    sweep.add_argument(
        "--metric", choices=(*_METRICS, "all"), default="speedup",
        help="which normalised table(s) to print (default: speedup)",
    )
    sweep.add_argument(
        "--spec", default=None, metavar="FILE",
        help="run a JSON list of serialised Experiment specs (the "
             "Experiment.to_dict format; see docs/api.md) instead of the "
             "--cores/--groups/--policies grid, printing one summary row "
             "per spec",
    )
    sweep.add_argument(
        "--dry-run", action="store_true",
        help="print the planned task list (alone-run dependencies "
             "included) with per-task store hit/miss status and exit "
             "without simulating anything",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    alone = commands.add_parser(
        "alone", parents=[common, selection, pooling, quiet_flag],
        help="profile benchmarks in isolation (Table 3's MPKI classification)",
    )
    alone.add_argument(
        "benchmarks", nargs="*", metavar="BENCHMARK",
        help="benchmarks to profile (default: all 19)",
    )
    alone.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_JOBS or CPU count)",
    )
    alone.add_argument(
        "--engine", default=None, metavar="NAME",
        choices=("auto", "python", "batched", "compiled"),
        help="execution backend every task (workers included) runs on "
             "(default: $REPRO_ENGINE, then auto)",
    )
    alone.set_defaults(handler=_cmd_alone)

    report = commands.add_parser(
        "report", parents=[common, selection],
        help="print the figure tables from stored results (never simulates)",
    )
    report.add_argument(
        "--format", choices=("table", "json", "csv"), default="table",
        help="output format: human tables, one JSON document, or flat "
             "metric,group,policy,value CSV rows (default: table)",
    )
    report.set_defaults(handler=_cmd_report)

    scenario = commands.add_parser(
        "scenario", parents=[common, selection, obs_flags, quiet_flag],
        help="run a time-varying schedule (arrivals/departures/phases) "
             "and print its timeline",
    )
    scenario.add_argument(
        "--preset", choices=("consolidation", "arrival", "phases"),
        default="consolidation",
        help="schedule shape: consolidation (half the cores depart "
             "mid-run), arrival (the last core joins mid-run), phases "
             "(core 0 switches benchmark mid-run); default: consolidation",
    )
    scenario.add_argument(
        "--spec", default=None, metavar="FILE",
        help="JSON schedule file (the scenario_to_dict format) overriding "
             "--preset",
    )
    scenario.add_argument(
        "--group", default=None, metavar="NAME",
        help="Table 4 group supplying the applications (default: G2-1 / G4-1)",
    )
    scenario.add_argument(
        "--at-fraction", type=float, default=0.35, metavar="F",
        help="preset event position within the measured window of the "
             "static baseline run, 0..1 (default: 0.35)",
    )
    scenario.add_argument(
        "--format", choices=("table", "json", "csv"), default="table",
        help="output format (default: table)",
    )
    scenario.add_argument(
        "--suite", choices=("quick", "full"), default=None,
        help="run the differential suite over the committed scenario "
             "corpus instead of a single schedule: every selected "
             "(scenario x policy x governor) combination through the "
             "store-backed runner plus the invariant harness; exits "
             "non-zero on any violation (see docs/scenarios.md)",
    )
    scenario.add_argument(
        "--governors", default=None, metavar="LIST",
        help="suite mode: comma-separated governor settings, 'none' "
             "meaning the ungoverned machine (default: none,coordinated "
             "for quick; none,fixed,ondemand,coordinated for full)",
    )
    scenario.add_argument(
        "--filter", default=None, metavar="SUBSTR",
        help="suite mode: keep only corpus scenarios whose name "
             "contains SUBSTR (e.g. 'storm', '4c')",
    )
    scenario.add_argument(
        "--list", action="store_true",
        help="suite mode: print the selected corpus scenarios and exit "
             "without running anything",
    )
    scenario.add_argument(
        "--report", default=None, metavar="FILE",
        help="suite mode: also write the JSON report to FILE (the CI "
             "artifact shape)",
    )
    scenario.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="suite mode: worker processes for the run fan-out "
             "(default: $REPRO_JOBS or CPU count)",
    )
    scenario.set_defaults(handler=_cmd_scenario)

    bench = commands.add_parser(
        "bench", parents=[obs_flags, quiet_flag],
        help="measure engine throughput (refs/s) on the fixed workload matrix",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smoke-sized matrix (two cases, short traces) for CI",
    )
    bench.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="timed runs per case, best kept (default: 3, 2 with --quick)",
    )
    bench.add_argument(
        "--output", default=None, metavar="FILE",
        help=f"where to write the payload (default: ./{BENCH_FILENAME}; "
             f"'-' skips writing)",
    )
    bench.add_argument(
        "--baseline", default="benchmarks/perf/baseline.json", metavar="FILE",
        help="pre-overhaul engine payload to report the speedup against "
             "(default: benchmarks/perf/baseline.json; skipped if missing)",
    )
    bench.add_argument(
        "--check", default=None, metavar="FILE",
        help="compare against a committed bench payload and exit non-zero "
             "on any regression beyond --tolerance",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.20, metavar="F",
        help="allowed fractional throughput drop for --check (default 0.20)",
    )
    bench.add_argument(
        "--engine", default=None, metavar="NAME",
        choices=["auto", "python", "batched", "compiled"],
        help="execution backend to time: auto (default; fastest "
             "available, also honours $REPRO_ENGINE), python, batched "
             "or compiled — an explicit request this machine cannot "
             "satisfy is an error, never a silent fallback",
    )
    bench.add_argument(
        "--profile", default=None, metavar="OUT.prof",
        help="run the matrix under cProfile and write pstats data to "
             "OUT.prof (inspect with `python -m pstats OUT.prof` or "
             "snakeviz); timings include profiler overhead, so the "
             "payload is not written and --check is unavailable",
    )
    bench.add_argument(
        "--sweep", action="store_true",
        help="time the orchestration layer instead of the engine: "
             "tasks/s of a many-small-task sweep on the warm vs spawn "
             "pools plus the cached-resume path, written to "
             "BENCH_sweep_throughput.json (--check compares against a "
             "committed sweep payload)",
    )
    bench.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="--sweep mode: worker processes per pool "
             "(default: $REPRO_JOBS or CPU count)",
    )
    bench.set_defaults(handler=_cmd_bench)

    serve = commands.add_parser(
        "serve", parents=[common, pooling, quiet_flag],
        help="run the sweep-as-a-service daemon (HTTP job queue over the store)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8321, metavar="PORT",
        help="port to bind; 0 picks an ephemeral port (default: 8321)",
    )
    serve.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes per job (default: $REPRO_JOBS or CPU count)",
    )
    serve.add_argument(
        "--engine", default=None, metavar="NAME",
        choices=("auto", "python", "batched", "compiled"),
        help="execution backend jobs run on unless their submission "
             "pins one (default: $REPRO_ENGINE, then auto)",
    )
    serve.set_defaults(handler=_cmd_serve)

    trace = commands.add_parser(
        "trace",
        help="inspect observability trace files (see docs/observability.md)",
    )
    trace_actions = trace.add_subparsers(dest="trace_command", required=True)
    trace_view = trace_actions.add_parser(
        "view",
        help="convert a trace (JSONL or Chrome JSON) into a "
             "Perfetto-loadable Chrome trace-event file",
    )
    trace_view.add_argument("file", metavar="TRACE")
    trace_view.add_argument(
        "-o", "--output", default=None, metavar="OUT.json",
        help="where to write the Chrome JSON (default: stdout)",
    )
    trace_view.set_defaults(handler=_cmd_trace_view)

    clean = commands.add_parser(
        "clean", parents=[common], help="delete every stored artifact"
    )
    clean.set_defaults(handler=_cmd_clean)

    check = commands.add_parser(
        "check",
        help="run the project-invariant static analysis "
             "(see docs/static-analysis.md)",
    )
    add_check_arguments(check)
    check.set_defaults(handler=cmd_check)
    return parser


# ----------------------------------------------------------------------
# Selection helpers
# ----------------------------------------------------------------------
def _config_from(options: argparse.Namespace) -> SystemConfig:
    refs = options.refs_per_core
    if refs is None:
        # Match benchmarks/conftest.py (60000, and 5/6 of it for the
        # four-core sweeps) so `repro sweep` and the figure drivers
        # share task keys.
        refs = 60_000 if options.cores == 2 else 50_000
    if refs <= 0:
        raise SystemExit(f"--refs-per-core must be positive, got {refs}")
    factory = scaled_two_core if options.cores == 2 else scaled_four_core
    config = factory(refs_per_core=refs)
    if options.threshold is not None:
        config = config.with_threshold(options.threshold)
    return config


def _groups_from(options: argparse.Namespace) -> list[str]:
    names = group_names(options.cores)
    spec = options.groups
    if not spec:
        return names
    try:
        count = int(spec)
    except ValueError:
        chosen = [token.strip() for token in spec.split(",") if token.strip()]
        unknown = [g for g in chosen if g not in names]
        if unknown:
            raise SystemExit(
                f"unknown group(s) {', '.join(unknown)} for --cores "
                f"{options.cores}; valid: {', '.join(names)}"
            )
        return chosen
    if count <= 0:
        raise SystemExit(f"--groups must name groups or a positive count, got {count}")
    return names[:count]


def _policies_from(options: argparse.Namespace) -> tuple[str, ...]:
    spec = options.policies
    if not spec:
        return ALL_POLICIES
    chosen = tuple(token.strip() for token in spec.split(",") if token.strip())
    unknown = [p for p in chosen if p not in ALL_POLICIES]
    if unknown:
        raise SystemExit(
            f"unknown polic{'ies' if len(unknown) > 1 else 'y'} "
            f"{', '.join(unknown)}; valid: {', '.join(ALL_POLICIES)}"
        )
    return chosen


def _governor_from(options: argparse.Namespace):
    """Build the selected :class:`GovernorSpec` (None when no
    ``--governor`` was given)."""
    import json

    from repro.dvfs.governors import GovernorSpec, registered_governors

    raw_params = options.governor_param or []
    if options.governor is None:
        if raw_params:
            raise SystemExit(
                "--governor-param requires --governor NAME "
                f"(registered: {', '.join(registered_governors())})"
            )
        return None
    params = {}
    for binding in raw_params:
        key, separator, value = binding.partition("=")
        if not separator or not key:
            raise SystemExit(
                f"--governor-param must look like KEY=VALUE, got {binding!r}"
            )
        try:
            params[key] = json.loads(value)
        except ValueError:
            params[key] = value
    try:
        return GovernorSpec(options.governor, **params)
    except (TypeError, ValueError) as error:
        raise SystemExit(f"bad --governor selection: {error}")


def _store_from(options: argparse.Namespace) -> ResultStore:
    return ResultStore(options.store if options.store else default_store_path())


def _progress(line: str) -> None:
    from repro.obs.log import progress

    progress(line)


def _stdout_progress(line: str) -> None:
    """Progress that belongs on stdout (bench timing lines); honours --quiet."""
    from repro.obs.log import progress

    progress(line, stream=sys.stdout)


def _apply_obs(options: argparse.Namespace) -> None:
    """Honour --quiet/--trace/--metrics before the handler runs.

    The env exports matter as much as the in-process switches: warm and
    spawn pool workers inherit the parent environment, and the ssh pool
    reads ``tracing_enabled()`` to decide whether to ask remotes for
    traces, so setting state here covers every execution tier.
    """
    import os

    from repro import obs

    if getattr(options, "quiet", False):
        obs.set_quiet(True)
        os.environ[obs.QUIET_ENV] = "1"
    if getattr(options, "trace", None):
        os.environ[obs.TRACE_ENV] = "1"
        obs.enable_tracing()
    if getattr(options, "metrics", None):
        os.environ[obs.METRICS_ENV] = "1"
        obs.enable_metrics()


def _finish_obs(options: argparse.Namespace) -> None:
    """Write --trace/--metrics output after the handler returns.

    Handlers that fan work out to pool workers stash their store and
    planned experiments on the namespace (``_trace_store`` /
    ``_trace_tasks``) so worker-side trace artifacts get merged in;
    parent-process events are always included.
    """
    import os

    from repro import obs

    trace_path = getattr(options, "trace", None)
    if trace_path:
        events = list(obs.recorder().events())
        store = getattr(options, "_trace_store", None)
        tasks = getattr(options, "_trace_tasks", None)
        if store is not None and tasks:
            # Worker artifacts repeat the parent's own inline spans when
            # tasks ran serially; the pid filter drops those duplicates.
            pid = os.getpid()
            events.extend(
                event
                for event in _collect_task_traces(store, tasks)
                if event.get("pid") != pid
            )
        from repro.obs.trace import write_trace_file

        count = write_trace_file(events, trace_path)
        obs.progress(f"wrote {count} trace event(s) to {trace_path}")
    metrics_path = getattr(options, "metrics", None)
    if metrics_path:
        text = obs.render_prometheus()
        if metrics_path == "-":
            sys.stdout.write(text)
        else:
            with open(metrics_path, "w", encoding="utf-8") as handle:
                handle.write(text)
            obs.progress(f"wrote metrics to {metrics_path}")


def _collect_task_traces(store: ResultStore, experiments: Sequence) -> list[dict]:
    """Trace events persisted by workers for ``experiments`` (deps included).

    Cached tasks never simulate, so their trace artifacts may be absent;
    those are skipped silently.
    """
    from repro.obs.trace import trace_key

    events: list[dict] = []
    seen: set[str] = set()
    for experiment in experiments:
        for spec in (experiment, *experiment.alone_dependencies()):
            key = spec.task_key()
            if key in seen:
                continue
            seen.add(key)
            payload = store.get(trace_key(key))
            if payload:
                events.extend(payload.get("events", ()))
    return events


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------
def _print_table(
    title: str,
    rows: dict[str, dict[str, float]],
    policies: Sequence[str],
    average: dict[str, float],
) -> None:
    print(f"\n=== {title} ===")
    print(f"{'group':<8}" + "".join(f"{p:>14}" for p in policies))
    for group, row in rows.items():
        print(f"{group:<8}" + "".join(f"{row[p]:>14.3f}" for p in policies))
    print(f"{'AVG':<8}" + "".join(f"{average[p]:>14.3f}" for p in policies))


def _metric_tables(
    runner: ExperimentRunner,
    results: dict,
    config: SystemConfig,
    policies: Sequence[str],
    metrics: Sequence[str],
) -> dict[str, dict]:
    """Normalised (metric -> {title, groups, average}) figure data."""
    baseline = "fair_share" if "fair_share" in policies else policies[0]
    titles = {
        "speedup": f"weighted speedup (normalised to {baseline})",
        "dynamic": f"dynamic energy per kilo-instruction (normalised to {baseline})",
        "static": f"static leakage power (normalised to {baseline})",
    }
    tables: dict[str, dict] = {}
    for metric in metrics:
        if metric == "speedup":
            table = runner.normalized_weighted_speedup(results, config, baseline)
        else:
            table = runner.normalized_energy(results, metric, baseline)
        average = {
            policy: geometric_mean([table[group][policy] for group in table])
            for policy in policies
        }
        tables[metric] = {
            "title": f"{config.n_cores}-core {titles[metric]}",
            "baseline": baseline,
            "groups": table,
            "average": average,
        }
    return tables


def _render_tables(
    runner: ExperimentRunner,
    results: dict,
    config: SystemConfig,
    policies: Sequence[str],
    metrics: Sequence[str],
    output_format: str = "table",
) -> None:
    """Render the figure tables as human tables, JSON or CSV."""
    tables = _metric_tables(runner, results, config, policies, metrics)
    if output_format == "json":
        import json

        print(
            json.dumps(
                {
                    "n_cores": config.n_cores,
                    "refs_per_core": config.refs_per_core,
                    "policies": list(policies),
                    "metrics": tables,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return
    if output_format == "csv":
        print("metric,group,policy,value")
        for metric, data in tables.items():
            for group, row in data["groups"].items():
                for policy in policies:
                    print(f"{metric},{group},{policy},{row[policy]!r}")
            for policy in policies:
                print(f"{metric},AVG,{policy},{data['average'][policy]!r}")
        return
    for data in tables.values():
        _print_table(data["title"], data["groups"], policies, data["average"])


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _executor_from(options: argparse.Namespace, store: ResultStore) -> SweepExecutor:
    """Build the sweep executor, mapping an unavailable ``--engine``
    request or a bad ``--pool``/``--hosts`` selection to a clean CLI
    error instead of a traceback."""
    from repro.engine import EngineUnavailableError

    try:
        return SweepExecutor(
            store,
            resolve_jobs(options.jobs),
            progress=_progress,
            engine=getattr(options, "engine", None),
            pool=getattr(options, "pool", None),
            hosts=getattr(options, "hosts", None),
        )
    except (EngineUnavailableError, ValueError) as error:
        raise SystemExit(str(error))


def _cmd_sweep(options: argparse.Namespace) -> int:
    if options.spec:
        return _cmd_sweep_spec(options)
    config = _config_from(options)
    groups = _groups_from(options)
    policies = _policies_from(options)
    governor = _governor_from(options)
    store = _store_from(options)
    executor = _executor_from(options, store)
    started = time.perf_counter()
    experiments = Experiment.grid(config, groups, policies, governor=governor)
    if options.dry_run:
        return _render_dry_run(executor, experiments, store)
    # _finish_obs merges worker-side trace artifacts for these tasks.
    options._trace_store, options._trace_tasks = store, experiments
    computed, cached = executor.prefetch(experiments)
    executor.close()  # workers are done; assembly is cache hits
    # Assemble directly through the runner: the prefetch above already
    # materialised every artifact, so re-running each spec is a pure
    # cache hit.
    results = {
        group: {
            policy: executor.runner.run(
                Experiment(group, policy, config, governor=governor)
            )
            for policy in policies
        }
        for group in groups
    }
    elapsed = time.perf_counter() - started
    metrics = _METRICS if options.metric == "all" else (options.metric,)
    _render_tables(executor.runner, results, config, policies, metrics)
    print(
        f"\n{len(experiments)} group runs over {len(groups)} groups x "
        f"{len(policies)} schemes; {computed} tasks computed, {cached} "
        f"cached in {store.root} (alone-run dependencies included; "
        f"{elapsed:.1f}s, {executor.max_workers} workers, "
        f"{executor.pool_name} pool)"
    )
    return 0


def _render_dry_run(
    executor: SweepExecutor, experiments: list, store: ResultStore
) -> int:
    """``repro sweep --dry-run``: the planned task list, no simulation."""
    plan = executor.plan_report(experiments)
    print(f"{'status':<8}{'kind':<10}{'experiment':<44}{'key':<14}")
    for experiment, cached in plan:
        status = "hit" if cached else "miss"
        print(
            f"{status:<8}{experiment.kind:<10}{experiment.label:<44}"
            f"{experiment.task_key()[:12]:<14}"
        )
    missing = sum(1 for _, cached in plan if not cached)
    print(
        f"\n{len(plan)} task(s) planned (alone-run dependencies "
        f"included); {len(plan) - missing} cached in {store.root}, "
        f"{missing} would be computed — dry run, nothing executed"
    )
    return 0


def _cmd_sweep_spec(options: argparse.Namespace) -> int:
    """``repro sweep --spec FILE``: run serialised Experiment specs."""
    import json

    if _governor_from(options) is not None:
        raise SystemExit(
            "--governor cannot be combined with --spec: each spec "
            "document carries its own governor (the Experiment.to_dict "
            "'governor' field)"
        )
    with open(options.spec, "r", encoding="utf-8") as handle:
        documents = json.load(handle)
    if not isinstance(documents, list):
        raise SystemExit(
            f"{options.spec} must hold a JSON *list* of Experiment specs "
            f"(got {type(documents).__name__})"
        )
    try:
        experiments = [Experiment.from_dict(document) for document in documents]
    except (KeyError, TypeError, ValueError) as error:
        raise SystemExit(f"bad experiment spec in {options.spec}: {error}")
    store = _store_from(options)
    executor = _executor_from(options, store)
    if options.dry_run:
        return _render_dry_run(executor, experiments, store)
    options._trace_store, options._trace_tasks = store, experiments
    started = time.perf_counter()
    computed, cached = executor.prefetch(experiments)
    executor.close()  # workers are done; assembly is cache hits
    print(f"{'kind':<10}{'experiment':<38}{'key':<14}{'headline':<40}")
    for experiment in experiments:
        result = executor.runner.run(experiment)
        if isinstance(result, AloneResult):
            headline = f"ipc={result.ipc:.3f} mpki={result.mpki:.2f}"
        else:
            headline = (
                f"dyn={result.dynamic_energy_nj:,.0f}nJ "
                f"static={result.static_energy_nj:,.0f}nJ "
                f"ways={result.average_active_ways:.1f}"
            )
        print(
            f"{experiment.kind:<10}{experiment.label:<38}"
            f"{experiment.task_key()[:12]:<14}{headline:<40}"
        )
    elapsed = time.perf_counter() - started
    print(
        f"\n{len(experiments)} spec(s); {computed} tasks computed, "
        f"{cached} cached in {store.root} ({elapsed:.1f}s, "
        f"{executor.max_workers} workers, {executor.pool_name} pool)"
    )
    return 0


def _cmd_alone(options: argparse.Namespace) -> int:
    if _governor_from(options) is not None:
        raise SystemExit(
            "alone runs always profile at the nominal frequency (no "
            "--governor): IPC_alone is the QoS reference every DVFS "
            "comparison is measured against"
        )
    config = _config_from(options).alone()
    names = options.benchmarks or sorted(BENCHMARK_PROFILES)
    unknown = [name for name in names if name not in BENCHMARK_PROFILES]
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s) {', '.join(unknown)}; valid: "
            f"{', '.join(sorted(BENCHMARK_PROFILES))}"
        )
    store = _store_from(options)
    executor = _executor_from(options, store)
    results = executor.alone_many(config, names)
    executor.close()
    print(f"\n=== alone runs on {config.l2.describe()} ===")
    print(f"{'benchmark':<12}{'paper MPKI':>12}{'measured':>12}{'IPC':>8}{'class':>9}")
    for name in names:
        result = results[name]
        profile = BENCHMARK_PROFILES[name]
        print(
            f"{name:<12}{profile.mpki:>12.2f}{result.mpki:>12.2f}"
            f"{result.ipc:>8.3f}{classify_mpki(result.mpki).value:>9}"
        )
    return 0


def _cmd_report(options: argparse.Namespace) -> int:
    config = _config_from(options)
    groups = _groups_from(options)
    policies = _policies_from(options)
    governor = _governor_from(options)
    store = _store_from(options)
    # Validate with get(), not has(): a corrupt artifact exists on disk
    # but reads as a miss, and report must refuse rather than silently
    # fall back to simulating it.
    missing: list[str] = []
    for group in groups:
        for policy in policies:
            experiment = Experiment(group, policy, config, governor=governor)
            if store.get(experiment.task_key()) is None:
                missing.append(f"{group}/{policy}")
        for benchmark in group_benchmarks(group):
            alone = Experiment.alone_run(benchmark, system=config)
            if store.get(alone.task_key()) is None:
                missing.append(f"alone/{benchmark}")
    if missing:
        shown = ", ".join(sorted(set(missing))[:10])
        print(
            f"{len(set(missing))} result(s) missing from {store.root} "
            f"({shown}{', ...' if len(set(missing)) > 10 else ''}); "
            f"run the matching `repro sweep` first",
            file=sys.stderr,
        )
        return 1
    runner = ExperimentRunner(store=store)
    results = {
        group: {
            policy: runner.run(
                Experiment(group, policy, config, governor=governor)
            )
            for policy in policies
        }
        for group in groups
    }
    _render_tables(runner, results, config, policies, _METRICS, options.format)
    return 0


def _cmd_scenario(options: argparse.Namespace) -> int:
    import json

    if options.suite:
        return _run_scenario_suite(options)
    from repro.orchestration.serialize import scenario_from_dict, scenario_to_dict
    from repro.scenarios.model import (
        Scenario,
        arrival_scenario,
        consolidation_scenario,
        core_arrive,
        phased_scenario,
    )
    from repro.scenarios.timeline import render_timeline

    config = _config_from(options)
    policies = _policies_from(options)
    governor = _governor_from(options)
    group = options.group or ("G2-1" if options.cores == 2 else "G4-1")
    benchmarks = group_benchmarks(group)
    if len(benchmarks) != config.n_cores:
        raise SystemExit(
            f"group {group} has {len(benchmarks)} applications but "
            f"--cores is {config.n_cores}"
        )
    runner = ExperimentRunner(store=_store_from(options))

    if options.spec:
        with open(options.spec, "r", encoding="utf-8") as handle:
            scenario = scenario_from_dict(json.load(handle))
        scenario.validate(config.n_cores)
        # The comparison baseline must run the spec's own workload mix:
        # each slot's arrival benchmark, present from cycle 0.
        static = Scenario(
            name=f"static-{scenario.name}",
            events=tuple(
                core_arrive(core, benchmark, 0)
                for core, benchmark in enumerate(
                    scenario.arrival_benchmarks(config.n_cores)
                )
                if benchmark
            ),
        )
    else:
        static = Scenario.static(benchmarks, name=f"static-{group}")
        if not 0.0 <= options.at_fraction <= 1.0:
            raise SystemExit(
                f"--at-fraction must be in [0, 1], got {options.at_fraction}"
            )
        # Calibrate the preset's event cycle from the static baseline's
        # measured window (the baseline is cached, so this is cheap on
        # re-runs and doubles as the comparison point below).
        probe = runner.run(
            Experiment.for_scenario(
                static, system=config, policy=policies[0], governor=governor
            )
        )
        window_start = probe.end_cycle - probe.window_cycles
        event_cycle = window_start + int(
            probe.window_cycles * options.at_fraction
        )
        n = config.n_cores
        if options.preset == "consolidation":
            scenario = consolidation_scenario(
                benchmarks, list(range(n // 2, n)), event_cycle,
                name=f"consolidation-{group}",
            )
        elif options.preset == "arrival":
            scenario = arrival_scenario(
                benchmarks, n - 1, event_cycle, name=f"arrival-{group}"
            )
        else:
            scenario = phased_scenario(
                benchmarks, 0, ["lbm"], [event_cycle], name=f"phases-{group}"
            )

    document: dict = {
        "scenario": scenario_to_dict(scenario),
        "group": group,
        "n_cores": config.n_cores,
        "refs_per_core": config.refs_per_core,
        "governor": governor.to_dict() if governor is not None else None,
        "runs": {},
    }
    for policy in policies:
        run = runner.run(
            Experiment.for_scenario(
                scenario, system=config, policy=policy, governor=governor
            )
        )
        baseline = runner.run(
            Experiment.for_scenario(
                static, system=config, policy=policy, governor=governor
            )
        )
        takeovers = sum(run.policy_stats.takeover_events.values())
        summary = {
            "static_energy_nj": run.static_energy_nj,
            "static_energy_nj_baseline": baseline.static_energy_nj,
            "dynamic_energy_nj": run.dynamic_energy_nj,
            "core_energy_nj": run.core_energy_nj,
            "total_energy_nj": run.total_energy_nj,
            "average_active_ways": run.average_active_ways,
            "min_powered_ways": run.min_powered_ways(),
            "initial_powered_ways": (
                run.timeline[0].powered_ways if run.timeline else config.l2.ways
            ),
            "transitions_started": run.policy_stats.transitions_started,
            "takeover_events": takeovers,
            "transfer_flushes": run.policy_stats.transfer_flushes,
            "end_cycle": run.end_cycle,
        }
        document["runs"][policy] = {
            "summary": summary,
            "timeline": [sample.to_dict() for sample in run.timeline],
        }
        if options.format == "table":
            print(f"\n=== scenario {scenario.name} under {run.policy} ===")
            print(render_timeline(run.timeline, config.l2.ways))
            ratio = (
                run.static_energy_nj / baseline.static_energy_nj
                if baseline.static_energy_nj
                else float("nan")
            )
            print(
                f"static energy {run.static_energy_nj:,.1f} nJ vs "
                f"{baseline.static_energy_nj:,.1f} nJ static baseline "
                f"({ratio:.2f}x); powered ways "
                f"{summary['initial_powered_ways']} -> min "
                f"{summary['min_powered_ways']}; "
                f"{summary['transitions_started']} way transitions, "
                f"{takeovers} takeover events, "
                f"{summary['transfer_flushes']} transfer flushes"
            )
    if options.format == "json":
        print(json.dumps(document, indent=2, sort_keys=True))
    elif options.format == "csv":
        print(
            "policy,cycle,active_cores,allocations,powered_ways,"
            "static_energy_nj,dynamic_energy_nj,events"
        )
        for policy, data in document["runs"].items():
            for sample in data["timeline"]:
                active = "+".join(str(c) for c in sample["active_cores"])
                allocations = "+".join(str(a) for a in sample["allocations"])
                events = "+".join(sample["events"])
                print(
                    f"{policy},{sample['cycle']},{active},{allocations},"
                    f"{sample['powered_ways']},{sample['static_energy_nj']!r},"
                    f"{sample['dynamic_energy_nj']!r},{events}"
                )
    return 0


def _run_scenario_suite(options: argparse.Namespace) -> int:
    """``repro scenario --suite``: the corpus differential harness."""
    import json

    from repro.bench.differential import (
        render_report,
        run_suite,
        suite_entries,
        suite_governors,
        suite_policies,
    )

    for value, flag in (
        (options.spec, "--spec"),
        (options.group, "--group"),
        (options.governor, "--governor"),
        (options.governor_param, "--governor-param"),
    ):
        if value:
            raise SystemExit(
                f"{flag} cannot be combined with --suite: the suite draws "
                f"its scenarios from the committed corpus and its governor "
                f"settings from --governors"
            )
    policies = (
        _policies_from(options)
        if options.policies
        else suite_policies(options.suite)
    )
    governors = (
        tuple(
            token.strip()
            for token in options.governors.split(",")
            if token.strip()
        )
        if options.governors
        else suite_governors(options.suite)
    )
    if options.list:
        try:
            entries = suite_entries(options.suite, name_filter=options.filter)
        except ValueError as error:
            raise SystemExit(str(error))
        for entry in entries:
            print(
                f"{entry.name:<24} shape={entry.shape:<14} "
                f"cores={entry.n_cores} events={len(entry.scenario.events)}"
            )
        print(
            f"{len(entries)} scenario(s) x {len(policies)} policies x "
            f"{len(governors)} governors = "
            f"{len(entries) * len(policies) * len(governors)} runs"
        )
        return 0
    runner = ExperimentRunner(
        store=_store_from(options), max_workers=resolve_jobs(options.jobs)
    )
    try:
        report = run_suite(
            options.suite,
            policies=policies,
            governors=governors,
            name_filter=options.filter,
            refs_per_core=options.refs_per_core,
            runner=runner,
            progress=_progress,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    if options.report:
        with open(options.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        _progress(f"wrote report to {options.report}")
    if options.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    elif options.format == "csv":
        print(
            "scenario,shape,n_cores,policy,governor,end_cycle,"
            "total_energy_nj,static_power_nw,min_powered_ways,violations"
        )
        for row in report.rows:
            print(
                f"{row['scenario']},{row['shape']},{row['n_cores']},"
                f"{row['policy']},{row['governor']},{row['end_cycle']},"
                f"{row['total_energy_nj']!r},{row['static_power_nw']!r},"
                f"{row['min_powered_ways']},{row['violations']}"
            )
    else:
        print(render_report(report))
    return 0 if report.ok else 1


def _cmd_bench(options: argparse.Namespace) -> int:
    if options.sweep:
        return _cmd_bench_sweep(options)
    from pathlib import Path

    from repro.bench.harness import (
        bench_matrix,
        carry_trajectory,
        compare_to_baseline,
        load_payload,
        run_benchmarks,
        speedup_over,
        write_payload,
    )

    from repro.engine import EngineUnavailableError, resolve_engine

    repeats = options.repeats
    if repeats is None:
        repeats = 2 if options.quick else 3
    if repeats <= 0:
        raise SystemExit(f"--repeats must be positive, got {repeats}")
    if not 0.0 <= options.tolerance < 1.0:
        raise SystemExit(f"--tolerance must be in [0, 1), got {options.tolerance}")
    try:
        engine = resolve_engine(options.engine)
    except EngineUnavailableError as exc:
        raise SystemExit(str(exc))
    cases = bench_matrix(quick=options.quick)
    _stdout_progress(f"timing {len(cases)} cases on the {engine} engine, "
                     f"best of {repeats} runs each:")

    if options.profile:
        # Profiling answers "where does the time go", not "how fast is
        # it": the instrumented numbers are not comparable to normal
        # payloads, so nothing is persisted or checked.  The compiled
        # engine's kernel is opaque to cProfile (one long C call), so a
        # scratch trace recorder collects kernel span totals alongside
        # the Python-side profile.
        import cProfile

        from repro.obs import trace as obs_trace

        scratch = obs_trace.TraceRecorder()
        previous_recorder = obs_trace.set_recorder(scratch)
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            payload = run_benchmarks(
                cases, repeats=repeats, progress=_stdout_progress, engine=engine
            )
        finally:
            profiler.disable()
            obs_trace.set_recorder(previous_recorder)
        profiler.dump_stats(options.profile)
        print(
            f"aggregate: {payload['aggregate_refs_per_sec']:,.0f} refs/s "
            f"(geomean; includes profiler overhead)"
        )
        spans = scratch.summary()
        if spans.get("kernel_spans"):
            print(
                f"compiled kernel: {spans['kernel_spans']} span(s), "
                f"{spans['kernel_seconds']:.3f}s inside the kernel, "
                f"{spans['kernel_refs']:,} refs (invisible to cProfile)"
            )
        print(f"wrote profile data to {options.profile}")
        return 0

    payload = run_benchmarks(
        cases, repeats=repeats, progress=_stdout_progress, engine=engine
    )
    print(f"aggregate: {payload['aggregate_refs_per_sec']:,.0f} refs/s (geomean)")

    if options.baseline and Path(options.baseline).exists():
        baseline = load_payload(options.baseline)
        speedup = speedup_over(payload, baseline)
        if speedup is not None:
            print(
                f"speedup vs {baseline.get('engine', 'baseline')}: "
                f"{speedup:.2f}x (geomean over shared cases)"
            )

    output = options.output if options.output is not None else BENCH_FILENAME
    if output != "-":
        previous = load_payload(output) if Path(output).exists() else None
        write_payload(carry_trajectory(payload, previous), output)
        print(f"wrote {output}")

    if options.check:
        reference = load_payload(options.check)
        reference_names = {case["name"] for case in reference.get("cases", [])}
        shared = [
            case for case in payload["cases"] if case["name"] in reference_names
        ]
        if not shared:
            print(
                f"--check: no cases shared with {options.check}; "
                f"nothing was verified",
                file=sys.stderr,
            )
            return 1
        regressions = compare_to_baseline(payload, reference, options.tolerance)
        if regressions:
            print(f"\nthroughput regression vs {options.check}:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"no regression vs {options.check} (tolerance {options.tolerance:.0%})")
    return 0


def _cmd_bench_sweep(options: argparse.Namespace) -> int:
    """``repro bench --sweep``: orchestration tasks/s, not engine refs/s."""
    from pathlib import Path

    from repro.bench.harness import carry_trajectory, load_payload, write_payload
    from repro.bench.sweep_throughput import (
        SWEEP_BENCH_FILENAME,
        compare_sweep_to_baseline,
        run_sweep_benchmarks,
    )
    from repro.engine import EngineUnavailableError

    if options.profile:
        raise SystemExit("--profile applies to the engine matrix, not --sweep")
    if not 0.0 <= options.tolerance < 1.0:
        raise SystemExit(f"--tolerance must be in [0, 1), got {options.tolerance}")
    size = "quick" if options.quick else "full"
    print(f"timing the {size} many-small-task sweep (warm vs spawn pools):")
    try:
        payload = run_sweep_benchmarks(
            quick=options.quick,
            jobs=options.jobs,
            engine=options.engine,
            progress=_stdout_progress,
        )
    except EngineUnavailableError as error:
        raise SystemExit(str(error))
    print(
        f"warm over spawn: {payload['warm_over_spawn']:.2f}x "
        f"({payload['jobs']} workers, {payload['engine']} engine)"
    )

    output = options.output if options.output is not None else SWEEP_BENCH_FILENAME
    if output != "-":
        previous = load_payload(output) if Path(output).exists() else None
        write_payload(carry_trajectory(payload, previous), output)
        print(f"wrote {output}")

    if options.check:
        reference = load_payload(options.check)
        regressions = compare_sweep_to_baseline(
            payload, reference, options.tolerance
        )
        if regressions:
            print(
                f"\nsweep-throughput regression vs {options.check}:",
                file=sys.stderr,
            )
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"no regression vs {options.check} (tolerance {options.tolerance:.0%})")
    return 0


def _cmd_serve(options: argparse.Namespace) -> int:
    """``repro serve``: the HTTP job-queue daemon."""
    from repro.orchestration.serve import SweepServer

    store = _store_from(options)
    try:
        server = SweepServer(
            store,
            host=options.host,
            port=options.port,
            max_workers=resolve_jobs(options.jobs),
            engine=options.engine,
            pool=options.pool,
            hosts=options.hosts,
        )
        server.start()
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot serve: {error}")
    _progress(
        f"serving sweeps on {server.url} (store {store.root}, "
        f"{server.max_workers} workers, metrics at {server.url}/v1/metrics); "
        f"Ctrl-C to stop"
    )
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    _progress("stopped")
    return 0


def _cmd_trace_view(options: argparse.Namespace) -> int:
    """``repro trace view``: emit a Perfetto-loadable Chrome trace."""
    import json

    from repro.obs.trace import read_events, to_chrome_trace

    try:
        events = read_events(options.file)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read trace {options.file}: {error}")
    document = to_chrome_trace(events)
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.write("\n")
        _progress(
            f"wrote {len(events)} event(s) to {options.output} "
            f"(load at https://ui.perfetto.dev)"
        )
    else:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 0


def _cmd_clean(options: argparse.Namespace) -> int:
    store = _store_from(options)
    removed = store.clean()
    print(f"removed {removed} artifact(s) from {store.root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
