"""Process-pool sweep execution over the result store.

A sweep is a set of independent :class:`~repro.experiment.Experiment`
specs — each spec touches no shared mutable state — so the executor
shards them across worker processes and lets the store mediate all
communication: a worker simulates its spec with a private
store-backed :class:`~repro.sim.runner.ExperimentRunner`, persists
the artifact under :meth:`Experiment.task_key`, and returns only the
spec's label.  The parent then assembles the figure tables entirely
from cache hits, which guarantees the numbers are bit-identical to a
serial in-process run.

Scheduling is two-phase with per-spec dependency gating:

1. **alone runs** — every spec's :meth:`Experiment.
   alone_dependencies` (group members for weighted speedup, arrival
   benchmarks for profile-driven schemes) plus any alone specs passed
   directly — scheduling them first means no main task ever
   duplicates one;
2. **main runs** — the group and scenario specs themselves.  A main
   spec is submitted as soon as *its own* alone dependencies have
   completed (no global barrier between the phases), so main work
   overlaps the tail of the slowest alone runs.

An ``engine`` pin (``SweepExecutor(engine=...)``) propagates the
parent's resolved execution backend to every worker, so a sharded
sweep times the same engine a serial run would.

Third-party policies keep working under sharding: each task carries
the module that registered its policy class, and the worker imports
that module first (re-running the ``@register_policy`` decorator in
the child, which matters under the ``spawn`` start method).  Specs
whose policy class was registered in ``__main__`` — a script or
notebook that never packaged the module — cannot be rebuilt in a
worker at all, so those run inline in the parent instead of in the
pool.

Determinism: every task's randomness flows from
``SystemConfig.seed`` through the trace generator and policies, never
from worker identity or execution order, so a sweep produces the
same artifacts regardless of sharding, and a resumed sweep skips
completed tasks by key without changing any result.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable

from repro.experiment import Experiment
from repro.orchestration.store import ResultStore, default_store_path
from repro.sim.config import SystemConfig
from repro.sim.runner import ALL_POLICIES, ExperimentRunner
from repro.sim.stats import RunResult
from repro.workloads.groups import group_names

#: environment variable bounding worker-process count
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(max_workers: int | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else cores."""
    if max_workers is not None and max_workers > 0:
        return max_workers
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise SystemExit(f"${JOBS_ENV} must be an integer, got {env!r}")
    return os.cpu_count() or 1


def orchestrated_runner(
    store_path: str | os.PathLike | None = None,
    max_workers: int | None = None,
) -> ExperimentRunner:
    """A runner wired to the on-disk store and the process pool.

    The one-liner the examples and benchmark harness use: results
    persist under :func:`~repro.orchestration.store.default_store_path`
    (override with ``store_path`` or ``$REPRO_STORE``) and sweeps fan
    out across :func:`resolve_jobs` workers.
    """
    store = ResultStore(store_path if store_path is not None else default_store_path())
    return ExperimentRunner(store=store, max_workers=resolve_jobs(max_workers))


def normalize_task(task: "Experiment | tuple") -> Experiment:
    """Coerce a sweep task — a spec or a legacy ``(group, policy,
    config)`` tuple — into an :class:`Experiment`."""
    if isinstance(task, Experiment):
        return task
    group, policy, config = task
    return Experiment(group, policy, config)


# ----------------------------------------------------------------------
# Worker entry point (top-level so it pickles under spawn too)
# ----------------------------------------------------------------------
def _worker_run(
    store_root: str,
    experiment: Experiment,
    policy_module: str,
    governor_module: str | None = None,
    engine: str | None = None,
) -> str:
    # Importing the registering module re-runs its @register_policy
    # decorator in this process — a no-op for built-ins (the registry
    # auto-imports those) but required for third-party policies when
    # workers start via spawn and inherit nothing.  The same applies
    # to a third-party @register_governor module.
    import importlib

    importlib.import_module(policy_module)
    if governor_module is not None:
        importlib.import_module(governor_module)
    if engine is not None:
        # Pin the parent's resolved execution backend; this is a
        # private worker process, so the env write leaks nowhere.
        os.environ["REPRO_ENGINE"] = engine
    runner = ExperimentRunner(store=ResultStore(store_root))
    runner.run(experiment)
    return experiment.label


def _policy_module(experiment: Experiment) -> str:
    """The module whose import registers this spec's policy class."""
    return experiment.policy.info.cls.__module__


def _governor_module(experiment: Experiment) -> str | None:
    """The module registering this spec's governor class (None when
    the spec carries no governor)."""
    if experiment.governor is None:
        return None
    return experiment.governor.info.cls.__module__


def _pool_safe(experiment: Experiment) -> bool:
    """Whether a worker process can rebuild this spec's policy and
    governor classes (``__main__`` registrations exist only in the
    parent)."""
    return (
        _policy_module(experiment) != "__main__"
        and _governor_module(experiment) != "__main__"
    )


class SweepExecutor:
    """Shards experiment specs across worker processes.

    ``progress`` (optional) receives one human-readable line per
    completed task — the CLI points it at stderr.  ``engine``
    (optional) pins the execution backend every task runs on —
    workers and inline parent runs alike; it is resolved eagerly so
    an unavailable explicit engine fails here, once, instead of in
    every worker.
    """

    def __init__(
        self,
        store: ResultStore,
        max_workers: int | None = None,
        runner: ExperimentRunner | None = None,
        progress: Callable[[str], None] | None = None,
        engine: str | None = None,
    ) -> None:
        from repro.engine import resolve_engine

        self.store = store
        self.max_workers = resolve_jobs(max_workers)
        #: assembles final results; shares the same store, so every
        #: artifact a worker persists is a cache hit here
        self.runner = runner if runner is not None else ExperimentRunner(store=store)
        self.progress = progress
        #: resolved backend name, or None to let each run pick its own
        self.engine = None if engine is None else resolve_engine(engine)

    # ------------------------------------------------------------------
    # Task planning
    # ------------------------------------------------------------------
    def plan(
        self, tasks: Iterable["Experiment | tuple"]
    ) -> tuple[list[Experiment], list[Experiment], int]:
        """Split ``tasks`` into pending (alone-phase, main-phase) specs
        plus the total number of distinct task keys involved.

        ``runner.cached()`` both validates each artifact (a corrupt
        one reads as a miss and gets healed by a worker now, not
        re-simulated serially during assembly) and warms the runner's
        in-memory cache, so each artifact is parsed once per sweep.
        """
        alone: dict[str, Experiment] = {}
        main: dict[str, Experiment] = {}
        for task in tasks:
            experiment = normalize_task(task)
            bucket = alone if experiment.kind == "alone" else main
            bucket.setdefault(experiment.task_key(), experiment)
            for dependency in experiment.alone_dependencies():
                alone.setdefault(dependency.task_key(), dependency)
        total = len(alone) + len(main)
        alone_pending = [
            experiment
            for experiment in alone.values()
            if self.runner.cached(experiment) is None
        ]
        main_pending = [
            experiment
            for experiment in main.values()
            if self.runner.cached(experiment) is None
        ]
        return alone_pending, main_pending, total

    def plan_report(
        self, tasks: Iterable["Experiment | tuple"]
    ) -> list[tuple[Experiment, bool]]:
        """The full planned task list with per-task store status.

        Returns ``(experiment, cached)`` pairs in execution order —
        alone-phase dependencies first, then the main specs — without
        running anything.  ``repro sweep --dry-run`` renders this.
        """
        alone: dict[str, Experiment] = {}
        main: dict[str, Experiment] = {}
        for task in tasks:
            experiment = normalize_task(task)
            bucket = alone if experiment.kind == "alone" else main
            bucket.setdefault(experiment.task_key(), experiment)
            for dependency in experiment.alone_dependencies():
                alone.setdefault(dependency.task_key(), dependency)
        return [
            (experiment, self.runner.cached(experiment) is not None)
            for experiment in (*alone.values(), *main.values())
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def prefetch(self, tasks: Iterable["Experiment | tuple"]) -> tuple[int, int]:
        """Materialise artifacts for ``tasks`` (and their alone deps).

        Returns ``(computed, cached)`` task counts, alone runs
        included.  Safe to call with everything already cached — a
        resumed sweep costs one key probe per task.
        """
        alone_pending, main_pending, total = self.plan(tasks)
        computed = len(alone_pending) + len(main_pending)
        self._run_phases(alone_pending, main_pending)
        return computed, total - computed

    def sweep(
        self,
        config: SystemConfig,
        policies: tuple[str, ...] = ALL_POLICIES,
        groups: list[str] | None = None,
    ) -> dict[str, dict[str, RunResult]]:
        """Parallel, cache-aware equivalent of ``ExperimentRunner.sweep``."""
        groups = groups if groups is not None else group_names(config.n_cores)
        self.prefetch(Experiment.grid(config, groups, list(policies)))
        return {
            group: {
                policy: self.runner.run(Experiment(group, policy, config))
                for policy in policies
            }
            for group in groups
        }

    def prefetch_alone(
        self, config: SystemConfig, benchmarks: Iterable[str]
    ) -> tuple[int, int]:
        """Materialise alone runs for ``benchmarks``; ``(computed, cached)``."""
        return self.prefetch(
            Experiment.alone_run(benchmark, system=config)
            for benchmark in dict.fromkeys(benchmarks)
        )

    def alone_many(self, config: SystemConfig, benchmarks: Iterable[str]) -> dict:
        """Alone runs for ``benchmarks`` in parallel, keyed by name."""
        benchmarks = list(dict.fromkeys(benchmarks))
        self.prefetch_alone(config, benchmarks)
        return {b: self.runner.alone(b, config) for b in benchmarks}

    # ------------------------------------------------------------------
    def _run_phases(
        self, alone: list[Experiment], main: list[Experiment]
    ) -> None:
        """Run both scheduling phases with per-spec dependency gating.

        Alone runs are mutually independent, so all of them fan out
        immediately.  A main spec launches the moment *its own*
        pending alone dependencies land — not behind a global
        alone-phase barrier — so main work overlaps the tail of the
        slowest alone runs.  Scheduling affects wall-clock only:
        every task persists under its key and assembly reads the same
        artifacts a serial run produces.

        Specs whose policy class lives in ``__main__`` cannot be
        rebuilt by a spawned worker and run inline in the parent:
        inline alone specs first (they may unblock pooled main
        specs), inline main specs after the pool drains (by which
        point every alone dependency exists in the store).
        """
        total = len(alone) + len(main)
        if not total:
            return
        pooled = [e for e in (*alone, *main) if _pool_safe(e)]
        workers = min(self.max_workers, len(pooled))
        done = 0
        if workers <= 1:
            # Serial fallback: alone-then-main order satisfies every
            # dependency by construction.
            for experiment in (*alone, *main):
                self._run_inline(experiment)
                done += 1
                self._report(done, total, experiment.label)
            return
        pending_alone = {e.task_key() for e in alone}
        inline_alone = [e for e in alone if not _pool_safe(e)]
        inline_main = [e for e in main if not _pool_safe(e)]
        #: pool-safe main specs gated on alone deps still pending
        blocked: list[tuple[Experiment, set[str]]] = []
        ready_main: list[Experiment] = []
        for experiment in main:
            if not _pool_safe(experiment):
                continue
            deps = {
                d.task_key() for d in experiment.alone_dependencies()
            } & pending_alone
            if deps:
                blocked.append((experiment, deps))
            else:
                ready_main.append(experiment)
        store_root = str(self.store.root)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: dict = {}
            outstanding: set = set()

            def submit(experiment: Experiment) -> None:
                future = pool.submit(
                    _worker_run,
                    store_root,
                    experiment,
                    _policy_module(experiment),
                    _governor_module(experiment),
                    self.engine,
                )
                futures[future] = experiment
                outstanding.add(future)

            def unblock(key: str) -> None:
                still: list[tuple[Experiment, set[str]]] = []
                for experiment, deps in blocked:
                    deps.discard(key)
                    if deps:
                        still.append((experiment, deps))
                    else:
                        submit(experiment)
                blocked[:] = still

            for experiment in alone:
                if _pool_safe(experiment):
                    submit(experiment)
            for experiment in ready_main:
                submit(experiment)
            for experiment in inline_alone:
                self._run_inline(experiment)
                done += 1
                self._report(done, total, experiment.label)
                unblock(experiment.task_key())
            while outstanding:
                completed, _ = wait(outstanding, return_when=FIRST_COMPLETED)
                outstanding -= completed
                for future in completed:
                    future.result()  # surface worker exceptions immediately
                    experiment = futures[future]
                    done += 1
                    self._report(done, total, experiment.label)
                    unblock(experiment.task_key())
        for experiment in inline_main:
            self._run_inline(experiment)
            done += 1
            self._report(done, total, experiment.label)

    def _run_inline(self, experiment: Experiment) -> None:
        """Run one spec in the parent, honouring the pinned engine."""
        if self.engine is None:
            self.runner.run(experiment)
            return
        previous = os.environ.get("REPRO_ENGINE")
        os.environ["REPRO_ENGINE"] = self.engine
        try:
            self.runner.run(experiment)
        finally:
            if previous is None:
                os.environ.pop("REPRO_ENGINE", None)
            else:
                os.environ["REPRO_ENGINE"] = previous

    def _report(self, done: int, total: int, label: str) -> None:
        if self.progress is not None:
            self.progress(f"[{done}/{total}] {label}")
