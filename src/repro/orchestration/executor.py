"""Process-pool sweep execution over the result store.

A sweep is a cross-product of independent simulation tasks — each
(group, scheme, config) cell and each benchmark's alone run touches
no shared mutable state — so the executor shards them across worker
processes and lets the store mediate all communication: a worker
simulates its task with a private store-backed
:class:`~repro.sim.runner.ExperimentRunner`, persists the artifact,
and returns only the task label.  The parent then assembles the
figure tables entirely from cache hits, which guarantees the
numbers are bit-identical to a serial in-process run.

Scheduling is two-phase:

1. **alone runs** for every benchmark appearing in the sweep — they
   feed weighted speedup for every scheme and Dynamic CPE's profiled
   miss curves, so computing them first means no group task ever
   duplicates one;
2. **group runs**, one task per (group, scheme, config) cell.

Determinism: every task's randomness flows from
``SystemConfig.seed`` through the trace generator and policies, never
from worker identity or execution order, so a sweep produces the
same artifacts regardless of sharding, and a resumed sweep skips
completed tasks by key without changing any result.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable

from repro.orchestration.serialize import alone_task_key, group_task_key
from repro.orchestration.store import ResultStore, default_store_path
from repro.sim.config import SystemConfig
from repro.sim.runner import ALL_POLICIES, ExperimentRunner
from repro.sim.stats import RunResult
from repro.workloads.groups import group_benchmarks, group_names

#: environment variable bounding worker-process count
JOBS_ENV = "REPRO_JOBS"

#: one sweep task: (group, policy, config)
GroupTask = tuple[str, str, SystemConfig]


def resolve_jobs(max_workers: int | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else cores."""
    if max_workers is not None and max_workers > 0:
        return max_workers
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise SystemExit(f"${JOBS_ENV} must be an integer, got {env!r}")
    return os.cpu_count() or 1


def orchestrated_runner(
    store_path: str | os.PathLike | None = None,
    max_workers: int | None = None,
) -> ExperimentRunner:
    """A runner wired to the on-disk store and the process pool.

    The one-liner the examples and benchmark harness use: results
    persist under :func:`~repro.orchestration.store.default_store_path`
    (override with ``store_path`` or ``$REPRO_STORE``) and sweeps fan
    out across :func:`resolve_jobs` workers.
    """
    store = ResultStore(store_path if store_path is not None else default_store_path())
    return ExperimentRunner(store=store, max_workers=resolve_jobs(max_workers))


# ----------------------------------------------------------------------
# Worker entry points (top-level so they pickle under spawn too)
# ----------------------------------------------------------------------
def _worker_alone(store_root: str, config: SystemConfig, benchmark: str) -> str:
    runner = ExperimentRunner(store=ResultStore(store_root))
    runner.alone(benchmark, config)
    return benchmark


def _worker_group(
    store_root: str, config: SystemConfig, group: str, policy: str
) -> tuple[str, str]:
    runner = ExperimentRunner(store=ResultStore(store_root))
    runner.run_group(group, config, policy)
    return group, policy


class SweepExecutor:
    """Shards (group × scheme × geometry) tasks across worker processes.

    ``progress`` (optional) receives one human-readable line per
    completed task — the CLI points it at stderr.
    """

    def __init__(
        self,
        store: ResultStore,
        max_workers: int | None = None,
        runner: ExperimentRunner | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.store = store
        self.max_workers = resolve_jobs(max_workers)
        #: assembles final results; shares the same store, so every
        #: artifact a worker persists is a cache hit here
        self.runner = runner if runner is not None else ExperimentRunner(store=store)
        self.progress = progress

    # ------------------------------------------------------------------
    # Task planning
    # ------------------------------------------------------------------
    def pending_alone_tasks(
        self, tasks: Iterable[GroupTask]
    ) -> list[tuple[SystemConfig, str]]:
        """Alone runs the given group tasks depend on, minus cache hits."""
        wanted: dict[str, tuple[SystemConfig, str]] = {}
        for group, _policy, config in tasks:
            for benchmark in group_benchmarks(group):
                key = alone_task_key(config, benchmark)
                # cached_alone() both validates the artifact (a
                # corrupt one reads as a miss and gets healed by a
                # worker now, not re-simulated serially during
                # assembly) and warms the runner's in-memory cache,
                # so each artifact is parsed once per sweep.
                if key not in wanted and self.runner.cached_alone(
                    benchmark, config
                ) is None:
                    wanted[key] = (config, benchmark)
        return list(wanted.values())

    def pending_group_tasks(self, tasks: Iterable[GroupTask]) -> list[GroupTask]:
        """The subset of ``tasks`` with no stored artifact yet."""
        pending: dict[str, GroupTask] = {}
        for group, policy, config in tasks:
            key = group_task_key(config, group, policy)
            if key not in pending and self.runner.cached_group(
                group, config, policy
            ) is None:
                pending[key] = (group, policy, config)
        return list(pending.values())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def prefetch(self, tasks: Iterable[GroupTask]) -> tuple[int, int]:
        """Materialise artifacts for ``tasks`` (and their alone deps).

        Returns ``(computed, cached)`` task counts, alone runs
        included.  Safe to call with everything already cached — a
        resumed sweep costs one key probe per task.
        """
        tasks = list(tasks)
        alone_pending = self.pending_alone_tasks(tasks)
        group_pending = self.pending_group_tasks(tasks)
        total_alone = len({
            alone_task_key(config, benchmark)
            for group, _policy, config in tasks
            for benchmark in group_benchmarks(group)
        })
        total = total_alone + len(
            {group_task_key(c, g, p) for g, p, c in tasks}
        )
        computed = len(alone_pending) + len(group_pending)
        self._run_phase(
            [
                (_worker_alone, (str(self.store.root), config, benchmark), f"alone {benchmark}")
                for config, benchmark in alone_pending
            ]
        )
        self._run_phase(
            [
                (_worker_group, (str(self.store.root), config, group, policy), f"group {group} {policy}")
                for group, policy, config in group_pending
            ]
        )
        return computed, total - computed

    def sweep(
        self,
        config: SystemConfig,
        policies: tuple[str, ...] = ALL_POLICIES,
        groups: list[str] | None = None,
    ) -> dict[str, dict[str, RunResult]]:
        """Parallel, cache-aware equivalent of ``ExperimentRunner.sweep``."""
        groups = groups if groups is not None else group_names(config.n_cores)
        self.prefetch([(group, policy, config) for group in groups for policy in policies])
        return {
            group: {
                policy: self.runner.run_group(group, config, policy)
                for policy in policies
            }
            for group in groups
        }

    def prefetch_alone(
        self, config: SystemConfig, benchmarks: Iterable[str]
    ) -> tuple[int, int]:
        """Materialise alone runs for ``benchmarks``; ``(computed, cached)``."""
        benchmarks = list(dict.fromkeys(benchmarks))
        pending = [
            (config, benchmark)
            for benchmark in benchmarks
            if self.runner.cached_alone(benchmark, config) is None
        ]
        self._run_phase(
            [
                (_worker_alone, (str(self.store.root), config, benchmark), f"alone {benchmark}")
                for config, benchmark in pending
            ]
        )
        return len(pending), len(benchmarks) - len(pending)

    def alone_many(self, config: SystemConfig, benchmarks: Iterable[str]) -> dict:
        """Alone runs for ``benchmarks`` in parallel, keyed by name."""
        benchmarks = list(dict.fromkeys(benchmarks))
        self.prefetch_alone(config, benchmarks)
        return {b: self.runner.alone(b, config) for b in benchmarks}

    # ------------------------------------------------------------------
    def _run_phase(self, calls: list[tuple[Callable, tuple, str]]) -> None:
        """Run one phase's tasks, in the pool or inline when tiny."""
        if not calls:
            return
        workers = min(self.max_workers, len(calls))
        if workers <= 1:
            for index, (function, arguments, label) in enumerate(calls, 1):
                function(*arguments)
                self._report(index, len(calls), label)
            return
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(function, *arguments): label
                for function, arguments, label in calls
            }
            for index, future in enumerate(as_completed(futures), 1):
                future.result()  # surface worker exceptions immediately
                self._report(index, len(calls), futures[future])

    def _report(self, done: int, total: int, label: str) -> None:
        if self.progress is not None:
            self.progress(f"[{done}/{total}] {label}")
