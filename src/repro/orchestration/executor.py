"""Sweep execution over the result store and a pluggable pool.

A sweep is a set of independent :class:`~repro.experiment.Experiment`
specs — each spec touches no shared mutable state — so the executor
shards them across a :class:`~repro.orchestration.pools.Pool` backend
and lets the store mediate all communication: a worker simulates its
spec with a private store-backed
:class:`~repro.sim.runner.ExperimentRunner`, persists the artifact
under :meth:`Experiment.task_key`, and reports only the spec's label
and wall time.  The parent then assembles the figure tables entirely
from cache hits, which guarantees the numbers are bit-identical to a
serial in-process run — on every backend.

Where tasks run is the pool's business (see
:mod:`repro.orchestration.pools`): ``warm`` persistent workers by
default, ``spawn`` per-task processes, ``ssh`` remote fan-out, or
``serial`` inline.  Warm and ssh pools persist across phases and
:meth:`SweepExecutor.prefetch` calls — reuse one executor (it is a
context manager) to amortise worker start-up and per-worker trace
caches across waves of a large sweep.

Scheduling is two-phase with per-spec dependency gating:

1. **alone runs** — every spec's :meth:`Experiment.
   alone_dependencies` (group members for weighted speedup, arrival
   benchmarks for profile-driven schemes) plus any alone specs passed
   directly — scheduling them first means no main task ever
   duplicates one;
2. **main runs** — the group and scenario specs themselves.  A main
   spec is submitted as soon as *its own* alone dependencies have
   completed (no global barrier between the phases), so main work
   overlaps the tail of the slowest alone runs.

Planning is probe-based: :meth:`SweepExecutor.plan` asks the store
whether each key is present via :meth:`ResultStore.probe` — one index
lookup plus one ``stat``, no payload parse — so a fully-cached resume
costs O(index read) regardless of artifact size or count.

An ``engine`` pin (``SweepExecutor(engine=...)``) propagates the
parent's resolved execution backend to every worker, so a sharded
sweep times the same engine a serial run would.

Third-party policies keep working under sharding: each task carries
the module that registered its policy class, and the worker imports
that module first (re-running the ``@register_policy`` decorator in
the child, which matters under the ``spawn`` start method).  Specs
whose policy class was registered in ``__main__`` — a script or
notebook that never packaged the module — cannot be rebuilt in a
worker at all, so those run inline in the parent instead of in the
pool.

Determinism: every task's randomness flows from
``SystemConfig.seed`` through the trace generator and policies, never
from worker identity or execution order, so a sweep produces the
same artifacts regardless of sharding, and a resumed sweep skips
completed tasks by key without changing any result.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable

from repro.experiment import Experiment
from repro.obs import builtin as obs_metrics
from repro.obs.metrics import metrics_enabled
from repro.obs.trace import recorder as obs_recorder
from repro.orchestration import pools
from repro.orchestration.pools import PoolTask, SweepTaskError
from repro.orchestration.store import ResultStore, default_store_path
from repro.sim.config import SystemConfig
from repro.sim.runner import ALL_POLICIES, ExperimentRunner
from repro.sim.stats import RunResult
from repro.workloads.groups import group_names

#: environment variable bounding worker-process count
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(max_workers: int | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else cores."""
    if max_workers is not None and max_workers > 0:
        return max_workers
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise SystemExit(f"${JOBS_ENV} must be an integer, got {env!r}")
    return os.cpu_count() or 1


def orchestrated_runner(
    store_path: str | os.PathLike | None = None,
    max_workers: int | None = None,
) -> ExperimentRunner:
    """A runner wired to the on-disk store and the worker pool.

    The one-liner the examples and benchmark harness use: results
    persist under :func:`~repro.orchestration.store.default_store_path`
    (override with ``store_path`` or ``$REPRO_STORE``) and sweeps fan
    out across :func:`resolve_jobs` workers.
    """
    store = ResultStore(store_path if store_path is not None else default_store_path())
    return ExperimentRunner(store=store, max_workers=resolve_jobs(max_workers))


def normalize_task(task: "Experiment | tuple") -> Experiment:
    """Coerce a sweep task — a spec or a legacy ``(group, policy,
    config)`` tuple — into an :class:`Experiment`."""
    if isinstance(task, Experiment):
        return task
    group, policy, config = task
    return Experiment(group, policy, config)


def _policy_module(experiment: Experiment) -> str:
    """The module whose import registers this spec's policy class."""
    return experiment.policy.info.cls.__module__


def _governor_module(experiment: Experiment) -> str | None:
    """The module registering this spec's governor class (None when
    the spec carries no governor)."""
    if experiment.governor is None:
        return None
    return experiment.governor.info.cls.__module__


def _pool_safe(experiment: Experiment) -> bool:
    """Whether a worker process can rebuild this spec's policy and
    governor classes (``__main__`` registrations exist only in the
    parent)."""
    return (
        _policy_module(experiment) != "__main__"
        and _governor_module(experiment) != "__main__"
    )


class SweepExecutor:
    """Shards experiment specs across a pool of workers.

    ``progress`` (optional) receives one human-readable line per
    completed task — ``[done/total] label (seconds, backend)`` — the
    CLI points it at stderr.  ``engine`` (optional) pins the
    execution backend every task runs on — workers and inline parent
    runs alike; it is resolved eagerly so an unavailable explicit
    engine fails here, once, instead of in every worker.  ``pool``
    selects the execution backend (``warm``/``spawn``/``ssh``/
    ``serial``; default ``$REPRO_POOL`` or ``warm``) and ``hosts``
    feeds the ssh pool; both are validated eagerly too.

    Warm/ssh pools are persistent: the executor keeps one instance
    alive across :meth:`prefetch` calls and closes it in
    :meth:`close` (or on ``with`` exit).  Exiting the process without
    closing is safe — workers are daemonic — but closing promptly
    releases them.
    """

    def __init__(
        self,
        store: ResultStore,
        max_workers: int | None = None,
        runner: ExperimentRunner | None = None,
        progress: Callable[[str], None] | None = None,
        engine: str | None = None,
        pool: str | None = None,
        hosts: "Iterable[str] | str | None" = None,
    ) -> None:
        from repro.engine import resolve_engine

        self.store = store
        self.max_workers = resolve_jobs(max_workers)
        #: assembles final results; shares the same store, so every
        #: artifact a worker persists is a cache hit here
        self.runner = runner if runner is not None else ExperimentRunner(store=store)
        self.progress = progress
        #: resolved backend name, or None to let each run pick its own
        self.engine = None if engine is None else resolve_engine(engine)
        #: resolved pool backend + host list (fails fast on bad input)
        self.pool_name, self.hosts = pools.resolve_pool_name(pool, hosts)
        self._pool: pools.Pool | None = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the persistent pool's workers; idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _phase_pool(self, workers: int) -> tuple[pools.Pool, bool]:
        """The pool to run one phase batch on, plus whether it is
        ephemeral (spawn rebuilds per phase — that *is* its shape;
        warm/ssh/serial persist on the executor)."""
        if self.pool_name == pools.SPAWN:
            return pools.SpawnPool(self.store, workers, engine=self.engine), True
        if self._pool is None:
            self._pool = pools.resolve_pool(
                self.pool_name,
                store=self.store,
                max_workers=self.max_workers,
                engine=self.engine,
                hosts=self.hosts,
            )
        return self._pool, False

    # ------------------------------------------------------------------
    # Task planning
    # ------------------------------------------------------------------
    def _bucket(
        self, tasks: Iterable["Experiment | tuple"]
    ) -> tuple[dict[str, Experiment], dict[str, Experiment]]:
        """Distinct (alone, main) specs keyed by task key, dependencies
        included."""
        alone: dict[str, Experiment] = {}
        main: dict[str, Experiment] = {}
        for task in tasks:
            experiment = normalize_task(task)
            bucket = alone if experiment.kind == "alone" else main
            bucket.setdefault(experiment.task_key(), experiment)
            for dependency in experiment.alone_dependencies():
                alone.setdefault(dependency.task_key(), dependency)
        return alone, main

    def plan(
        self, tasks: Iterable["Experiment | tuple"]
    ) -> tuple[list[Experiment], list[Experiment], int]:
        """Split ``tasks`` into pending (alone-phase, main-phase) specs
        plus the total number of distinct task keys involved.

        Presence is decided by :meth:`ExperimentRunner.probe` — an
        index lookup and a ``stat`` per key, no payload parse — so
        planning a fully-cached thousand-task sweep is O(index read).
        A corrupt artifact that survives the size check surfaces at
        assembly time instead, where the store heals it and the
        runner recomputes inline.
        """
        alone, main = self._bucket(tasks)
        total = len(alone) + len(main)
        alone_pending = [
            experiment
            for experiment in alone.values()
            if not self.runner.probe(experiment)
        ]
        main_pending = [
            experiment
            for experiment in main.values()
            if not self.runner.probe(experiment)
        ]
        return alone_pending, main_pending, total

    def plan_report(
        self, tasks: Iterable["Experiment | tuple"]
    ) -> list[tuple[Experiment, bool]]:
        """The full planned task list with per-task store status.

        Returns ``(experiment, cached)`` pairs in execution order —
        alone-phase dependencies first, then the main specs — without
        running anything or parsing any artifact.  ``repro sweep
        --dry-run`` renders this; on a warm store it is near-instant.
        """
        alone, main = self._bucket(tasks)
        return [
            (experiment, self.runner.probe(experiment))
            for experiment in (*alone.values(), *main.values())
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def prefetch(self, tasks: Iterable["Experiment | tuple"]) -> tuple[int, int]:
        """Materialise artifacts for ``tasks`` (and their alone deps).

        Returns ``(computed, cached)`` task counts, alone runs
        included.  Safe to call with everything already cached — a
        resumed sweep costs one index probe per task.
        """
        alone_pending, main_pending, total = self.plan(tasks)
        computed = len(alone_pending) + len(main_pending)
        rec = obs_recorder()
        token = (
            rec.begin(
                "sweep", cat="sweep", tasks=total, pending=computed,
                backend=self.pool_name,
            )
            if rec.enabled
            else -1
        )
        try:
            self._run_phases(alone_pending, main_pending)
        finally:
            rec.end(token, cached=total - computed)
        return computed, total - computed

    def sweep(
        self,
        config: SystemConfig,
        policies: tuple[str, ...] = ALL_POLICIES,
        groups: list[str] | None = None,
    ) -> dict[str, dict[str, RunResult]]:
        """Parallel, cache-aware equivalent of ``ExperimentRunner.sweep``."""
        groups = groups if groups is not None else group_names(config.n_cores)
        self.prefetch(Experiment.grid(config, groups, list(policies)))
        return {
            group: {
                policy: self.runner.run(Experiment(group, policy, config))
                for policy in policies
            }
            for group in groups
        }

    def prefetch_alone(
        self, config: SystemConfig, benchmarks: Iterable[str]
    ) -> tuple[int, int]:
        """Materialise alone runs for ``benchmarks``; ``(computed, cached)``."""
        return self.prefetch(
            Experiment.alone_run(benchmark, system=config)
            for benchmark in dict.fromkeys(benchmarks)
        )

    def alone_many(self, config: SystemConfig, benchmarks: Iterable[str]) -> dict:
        """Alone runs for ``benchmarks`` in parallel, keyed by name."""
        benchmarks = list(dict.fromkeys(benchmarks))
        self.prefetch_alone(config, benchmarks)
        return {b: self.runner.alone(b, config) for b in benchmarks}

    # ------------------------------------------------------------------
    def _run_phases(
        self, alone: list[Experiment], main: list[Experiment]
    ) -> None:
        """Run both scheduling phases with per-spec dependency gating.

        Alone runs are mutually independent, so all of them fan out
        immediately.  A main spec launches the moment *its own*
        pending alone dependencies land — not behind a global
        alone-phase barrier — so main work overlaps the tail of the
        slowest alone runs.  Scheduling affects wall-clock only:
        every task persists under its key and assembly reads the same
        artifacts a serial run produces.

        Specs whose policy class lives in ``__main__`` cannot be
        rebuilt by a worker and run inline in the parent: inline
        alone specs first (they may unblock pooled main specs),
        inline main specs after the pool drains (by which point every
        alone dependency exists in the store).
        """
        total = len(alone) + len(main)
        if not total:
            return
        pooled_alone = [e for e in alone if _pool_safe(e)]
        pooled_main = [e for e in main if _pool_safe(e)]
        pooled = len(pooled_alone) + len(pooled_main)
        workers = min(self.max_workers, pooled)
        if (
            self.pool_name == pools.SERIAL
            or not pooled
            or (self.pool_name in (pools.WARM, pools.SPAWN) and workers <= 1)
        ):
            # Inline fallback: alone-then-main order satisfies every
            # dependency by construction.
            done = 0
            for experiment in (*alone, *main):
                seconds = self._run_inline(experiment)
                done += 1
                self._report(done, total, experiment.label, seconds, pools.SERIAL)
            return
        try:
            self._run_pooled(alone, main, pooled_alone, pooled_main, workers)
        finally:
            # Workers appended to the on-disk index behind our back;
            # the next plan()/probe must see their artifacts.
            self.store.refresh()

    def _run_pooled(
        self,
        alone: list[Experiment],
        main: list[Experiment],
        pooled_alone: list[Experiment],
        pooled_main: list[Experiment],
        workers: int,
    ) -> None:
        total = len(alone) + len(main)
        done = 0
        pending_alone = {e.task_key() for e in alone}
        inline_alone = [e for e in alone if not _pool_safe(e)]
        inline_main = [e for e in main if not _pool_safe(e)]
        #: pool-safe main specs gated on alone deps still pending
        blocked: list[tuple[Experiment, set[str]]] = []
        ready_main: list[Experiment] = []
        for experiment in pooled_main:
            deps = {
                d.task_key() for d in experiment.alone_dependencies()
            } & pending_alone
            if deps:
                blocked.append((experiment, deps))
            else:
                ready_main.append(experiment)
        pool, ephemeral = self._phase_pool(workers)
        metrics_on = metrics_enabled()
        #: task key -> submit instant, for queue-time metrics
        submitted: dict[str, float] = {}

        def note_submit(keys: Iterable[str]) -> None:
            if not metrics_on:
                return
            now = time.perf_counter()
            for key in keys:
                submitted[key] = now
            obs_metrics.POOL_OUTSTANDING.set(pool.outstanding)

        def unblock(key: str) -> None:
            still: list[tuple[Experiment, set[str]]] = []
            for experiment, deps in blocked:
                deps.discard(key)
                if deps:
                    still.append((experiment, deps))
                else:
                    task = PoolTask.from_experiment(experiment)
                    pool.submit(task)
                    note_submit((task.key,))
            blocked[:] = still

        try:
            pool.start()
            batch = [
                PoolTask.from_experiment(e)
                for e in (*pooled_alone, *ready_main)
            ]
            pool.submit_many(batch)
            note_submit(task.key for task in batch)
            for experiment in inline_alone:
                seconds = self._run_inline(experiment)
                done += 1
                self._report(done, total, experiment.label, seconds, pools.SERIAL)
                unblock(experiment.task_key())
            while pool.outstanding:
                result = pool.wait_one()
                if metrics_on:
                    self._observe_completion(
                        result, pool, submitted.pop(result.key, None)
                    )
                if result.error is not None:
                    raise SweepTaskError(
                        result.key, result.label, pool.name, result.error
                    )
                done += 1
                self._report(done, total, result.label, result.seconds, pool.name)
                unblock(result.key)
        except BaseException:
            self.close()
            if ephemeral:
                pool.close()
            raise
        if ephemeral:
            pool.close()
        for experiment in inline_main:
            seconds = self._run_inline(experiment)
            done += 1
            self._report(done, total, experiment.label, seconds, pools.SERIAL)

    @staticmethod
    def _observe_completion(
        result: pools.PoolResult,
        pool: pools.Pool,
        queued_at: float | None,
    ) -> None:
        """Fold one collected pool task into the metric registry."""
        backend = pool.name
        outcome = "ok" if result.error is None else "error"
        obs_metrics.TASKS_COMPLETED.inc(backend=backend, outcome=outcome)
        obs_metrics.TASK_WALL_SECONDS.observe(result.seconds, backend=backend)
        if queued_at is not None:
            wait = time.perf_counter() - queued_at - result.seconds
            obs_metrics.TASK_QUEUE_SECONDS.observe(
                max(0.0, wait), backend=backend
            )
        obs_metrics.POOL_OUTSTANDING.set(pool.outstanding)

    def _run_inline(self, experiment: Experiment) -> float:
        """Run one spec in the parent, honouring the pinned engine;
        returns the wall time."""
        start = time.perf_counter()
        if self.engine is None:
            self.runner.run(experiment)
            return self._inline_seconds(start)
        previous = os.environ.get("REPRO_ENGINE")
        os.environ["REPRO_ENGINE"] = self.engine
        try:
            self.runner.run(experiment)
        finally:
            if previous is None:
                os.environ.pop("REPRO_ENGINE", None)
            else:
                os.environ["REPRO_ENGINE"] = previous
        return self._inline_seconds(start)

    @staticmethod
    def _inline_seconds(start: float) -> float:
        seconds = time.perf_counter() - start
        if metrics_enabled():
            obs_metrics.TASK_WALL_SECONDS.observe(
                seconds, backend=pools.SERIAL
            )
            obs_metrics.TASKS_COMPLETED.inc(
                backend=pools.SERIAL, outcome="ok"
            )
        return seconds

    def _report(
        self, done: int, total: int, label: str, seconds: float, backend: str
    ) -> None:
        if self.progress is not None:
            self.progress(
                f"[{done}/{total}] {label} ({seconds:.2f}s, {backend})"
            )
