"""JSON serialisation of simulation artifacts and stable task keys.

The on-disk result store persists three kinds of artifacts:

* **alone runs** (:class:`~repro.sim.runner.AloneResult`) — one
  benchmark profiled by itself on the full LLC;
* **group runs** (:class:`~repro.sim.stats.RunResult`) — one Table 4
  group simulated under one scheme;
* **scenario runs** — one time-varying schedule under one scheme
  (a :class:`RunResult` with a recorded timeline).

All round-trip losslessly: every counter is an integer and every
float survives ``json`` encoding bit-exactly (Python emits the
shortest repr that parses back to the same double), so numbers read
back from the store are *identical* to freshly simulated ones — the
figures do not change depending on whether a result was cached.

Task keys are SHA-256 digests of a canonical JSON document covering
the full :class:`~repro.sim.config.SystemConfig` (geometries included),
the task parameters (benchmark or group/scenario + policy, plus any
non-default policy parameters) and the code-relevant versions
(:data:`SCHEMA_VERSION` and the library version).  They are stable
across processes and interpreter restarts — hash randomisation does
not affect them — which is what makes sweeps resumable and shardable
across workers.  :meth:`repro.experiment.Experiment.task_key` derives
these same keys directly from a spec, bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import defaultdict
from typing import TYPE_CHECKING, Any

from repro.partitioning.base import PolicyStats
from repro.scenarios.model import Scenario, ScenarioEvent
from repro.scenarios.timeline import TimelineSample
from repro.sim.config import SystemConfig
from repro.sim.stats import CoreResult, RunResult

if TYPE_CHECKING:  # imported lazily at runtime; runner imports us back
    from repro.sim.runner import AloneResult

#: bump whenever a change to the simulator, the policies or the trace
#: generator makes previously stored results stale; every task key
#: embeds it, so old artifacts simply stop matching (``repro clean``
#: reclaims the space).
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Task keys
# ----------------------------------------------------------------------
def config_fingerprint(config: SystemConfig) -> dict[str, Any]:
    """The full parameter dictionary of a config, geometries inlined."""
    return dataclasses.asdict(config)


def task_key(kind: str, config: SystemConfig, **params: Any) -> str:
    """Stable content address for one simulation task.

    ``kind`` is ``"alone"`` or ``"group"``; ``params`` carry the
    task-specific fields (``benchmark=...`` or ``group=...,
    policy=...``).  The digest covers the schema version, the library
    version and every config field, so any change that could alter
    the result changes the key.
    """
    from repro import __version__  # late: repro/__init__ imports the sim stack

    document = {
        "schema": SCHEMA_VERSION,
        "version": __version__,
        "kind": kind,
        "config": config_fingerprint(config),
        "params": params,
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def alone_task_key(config: SystemConfig, benchmark: str) -> str:
    """Key of ``benchmark``'s isolated profiling run on this geometry."""
    return task_key("alone", config.alone(), benchmark=benchmark)


def group_task_key(config: SystemConfig, group: str, policy: str) -> str:
    """Key of one (group, scheme) simulation on this geometry."""
    return task_key("group", config, group=group, policy=policy)


def scenario_task_key(config: SystemConfig, scenario: Scenario, policy: str) -> str:
    """Key of one (scenario, scheme) simulation on this geometry.

    The digest covers the complete event schedule, so two scenarios
    sharing a name but differing in any event time never collide.
    """
    return task_key(
        "scenario", config, scenario=scenario_to_dict(scenario), policy=policy
    )


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """Flatten a :class:`Scenario` into JSON-encodable primitives."""
    return {
        "name": scenario.name,
        "events": [
            {
                "kind": event.kind,
                "core": event.core,
                "at_cycle": event.at_cycle,
                "benchmark": event.benchmark,
            }
            for event in scenario.events
        ],
    }


def scenario_from_dict(data: dict[str, Any]) -> Scenario:
    """Rebuild a :class:`Scenario` from :func:`scenario_to_dict` output
    (also the on-disk ``--spec`` file format of ``repro scenario``)."""
    return Scenario(
        name=data["name"],
        events=tuple(
            ScenarioEvent(
                kind=event["kind"],
                core=event["core"],
                at_cycle=event["at_cycle"],
                benchmark=event.get("benchmark"),
            )
            for event in data["events"]
        ),
    )


# ----------------------------------------------------------------------
# PolicyStats
# ----------------------------------------------------------------------
def policy_stats_to_dict(stats: PolicyStats) -> dict[str, Any]:
    """Flatten a :class:`PolicyStats` into JSON-encodable primitives."""
    return {
        "n_cores": stats.n_cores,
        "flush_bucket_cycles": stats.flush_bucket_cycles,
        "demand_accesses": list(stats.demand_accesses),
        "demand_hits": list(stats.demand_hits),
        "writeback_accesses": list(stats.writeback_accesses),
        "ways_probed_sum": list(stats.ways_probed_sum),
        "probe_events": list(stats.probe_events),
        "decisions": stats.decisions,
        "repartitions": stats.repartitions,
        "last_decision_cycle": stats.last_decision_cycle,
        "transition_durations": list(stats.transition_durations),
        "pending_transition_ages": list(stats.pending_transition_ages),
        "transitions_started": stats.transitions_started,
        "transitions_completed": stats.transitions_completed,
        "transitions_forced": stats.transitions_forced,
        "takeover_events": dict(stats.takeover_events),
        "transfer_flushes": stats.transfer_flushes,
        # JSON only has string keys; buckets are ints, so re-key.
        "transfer_flush_buckets": {
            str(bucket): count
            for bucket, count in stats.transfer_flush_buckets.items()
        },
    }


def policy_stats_from_dict(data: dict[str, Any]) -> PolicyStats:
    """Rebuild a :class:`PolicyStats` from :func:`policy_stats_to_dict`."""
    stats = PolicyStats(data["n_cores"], data["flush_bucket_cycles"])
    stats.demand_accesses = list(data["demand_accesses"])
    stats.demand_hits = list(data["demand_hits"])
    stats.writeback_accesses = list(data["writeback_accesses"])
    stats.ways_probed_sum = list(data["ways_probed_sum"])
    stats.probe_events = list(data["probe_events"])
    stats.decisions = data["decisions"]
    stats.repartitions = data["repartitions"]
    stats.last_decision_cycle = data["last_decision_cycle"]
    stats.transition_durations = list(data["transition_durations"])
    stats.pending_transition_ages = list(data["pending_transition_ages"])
    stats.transitions_started = data["transitions_started"]
    stats.transitions_completed = data["transitions_completed"]
    stats.transitions_forced = data["transitions_forced"]
    stats.takeover_events = dict(data["takeover_events"])
    stats.transfer_flushes = data["transfer_flushes"]
    stats.transfer_flush_buckets = defaultdict(int)
    for bucket, count in data["transfer_flush_buckets"].items():
        stats.transfer_flush_buckets[int(bucket)] = count
    return stats


# ----------------------------------------------------------------------
# RunResult
# ----------------------------------------------------------------------
def run_result_to_dict(run: RunResult) -> dict[str, Any]:
    """Flatten a :class:`RunResult` (cores and policy stats included).

    The scenario fields are emitted only when they carry information
    (a non-static scenario or a recorded timeline), so classic static
    artifacts — including the pre-overhaul golden fixtures — keep
    their exact historical shape.
    """
    payload = {
        "policy": run.policy,
        "cores": [dataclasses.asdict(core) for core in run.cores],
        "dynamic_energy_nj": run.dynamic_energy_nj,
        "static_energy_nj": run.static_energy_nj,
        "average_active_ways": run.average_active_ways,
        "average_ways_probed": run.average_ways_probed,
        "end_cycle": run.end_cycle,
        "memory_reads": run.memory_reads,
        "memory_writebacks": run.memory_writebacks,
        "policy_stats": policy_stats_to_dict(run.policy_stats),
        "window_instructions": run.window_instructions,
        "window_cycles": run.window_cycles,
        "epoch_curves": [list(curve) for curve in run.epoch_curves],
    }
    if run.scenario != "static":
        payload["scenario"] = run.scenario
    if run.timeline:
        payload["timeline"] = [sample.to_dict() for sample in run.timeline]
    # DVFS fields are emitted only for runs that carried a governor,
    # so pre-DVFS artifacts and golden fixtures keep their exact
    # historical byte layout.
    if run.governor is not None:
        payload["governor"] = run.governor
        payload["core_dynamic_energy_nj"] = run.core_dynamic_energy_nj
        payload["core_static_energy_nj"] = run.core_static_energy_nj
    # Diagnostics exist only on traced runs; untraced artifacts (and
    # every golden fixture) keep their historical byte layout.
    if run.diagnostics:
        payload["diagnostics"] = run.diagnostics
    return payload


def run_result_from_dict(data: dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`run_result_to_dict`."""
    return RunResult(
        policy=data["policy"],
        cores=[CoreResult(**core) for core in data["cores"]],
        dynamic_energy_nj=data["dynamic_energy_nj"],
        static_energy_nj=data["static_energy_nj"],
        average_active_ways=data["average_active_ways"],
        average_ways_probed=data["average_ways_probed"],
        end_cycle=data["end_cycle"],
        memory_reads=data["memory_reads"],
        memory_writebacks=data["memory_writebacks"],
        policy_stats=policy_stats_from_dict(data["policy_stats"]),
        window_instructions=data["window_instructions"],
        window_cycles=data["window_cycles"],
        epoch_curves=[list(curve) for curve in data["epoch_curves"]],
        scenario=data.get("scenario", "static"),
        timeline=[
            TimelineSample.from_dict(sample)
            for sample in data.get("timeline", [])
        ],
        governor=data.get("governor"),
        core_dynamic_energy_nj=data.get("core_dynamic_energy_nj", 0.0),
        core_static_energy_nj=data.get("core_static_energy_nj", 0.0),
        diagnostics=data.get("diagnostics") or {},
    )


# ----------------------------------------------------------------------
# AloneResult
# ----------------------------------------------------------------------
def alone_result_to_dict(result: "AloneResult") -> dict[str, Any]:
    """Flatten an :class:`AloneResult` (profiled curves included)."""
    return {
        "benchmark": result.benchmark,
        "ipc": result.ipc,
        "mpki": result.mpki,
        "curves": [list(curve) for curve in result.curves],
    }


def alone_result_from_dict(data: dict[str, Any]) -> "AloneResult":
    """Rebuild an :class:`AloneResult` from :func:`alone_result_to_dict`."""
    from repro.sim.runner import AloneResult

    return AloneResult(
        benchmark=data["benchmark"],
        ipc=data["ipc"],
        mpki=data["mpki"],
        curves=tuple(tuple(curve) for curve in data["curves"]),
    )
