"""Declarative time-varying multiprogram schedules.

A :class:`Scenario` is a small, immutable description of *what runs
when* on the simulated CMP: a list of timed events over the machine's
core slots.  Three event kinds exist:

* ``core_arrive(core, benchmark, at_cycle)`` — the slot starts
  executing ``benchmark`` at ``at_cycle`` (cycle 0 = present from the
  start, exactly like the classic fixed-workload runs);
* ``core_depart(core, at_cycle)`` — the slot stops executing; its
  measurement window freezes and the partitioning policy is told the
  core went idle (cooperative partitioning flushes and power-gates the
  departing core's ways);
* ``phase_change(core, benchmark, at_cycle)`` — the slot switches its
  reference stream to a different benchmark's trace mid-run, modelling
  a program phase change coarser than the profile-level phases.

Semantics pinned down (see ``docs/scenarios.md`` for the full
contract):

* event times are absolute simulator cycles and are applied in
  timestamp order, interleaved with the policy's epoch boundaries;
* a slot with no arrival event is *never present*: the policy treats
  it as idle from cycle 0 (under cooperative partitioning its ways are
  gated before the run starts);
* the degenerate static scenario — every slot arrives at cycle 0 and
  nothing else happens — routes through exactly the same simulator
  code path as the historical fixed-trace runs and reproduces them
  bit-exactly (pinned by the golden-equivalence suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: event kinds, in canonical spelling
ARRIVE = "arrive"
DEPART = "depart"
PHASE = "phase"

_KINDS = (ARRIVE, DEPART, PHASE)


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed schedule event on one core slot."""

    kind: str
    core: int
    at_cycle: int
    #: benchmark name for ``arrive``/``phase`` events; None for depart
    benchmark: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; one of {_KINDS}")
        if self.core < 0:
            raise ValueError(f"core must be non-negative, got {self.core}")
        if self.at_cycle < 0:
            raise ValueError(f"at_cycle must be non-negative, got {self.at_cycle}")
        if self.kind == DEPART:
            if self.benchmark is not None:
                raise ValueError("depart events carry no benchmark")
        elif not self.benchmark:
            raise ValueError(f"{self.kind} events need a benchmark name")

    def describe(self) -> str:
        """Short human-readable label (used in timeline samples)."""
        if self.kind == DEPART:
            return f"depart:core{self.core}"
        return f"{self.kind}:core{self.core}={self.benchmark}"


def core_arrive(core: int, benchmark: str, at_cycle: int = 0) -> ScenarioEvent:
    """``core`` starts executing ``benchmark`` at ``at_cycle``."""
    return ScenarioEvent(ARRIVE, core, at_cycle, benchmark)


def core_depart(core: int, at_cycle: int) -> ScenarioEvent:
    """``core`` stops executing at ``at_cycle``."""
    return ScenarioEvent(DEPART, core, at_cycle)


def phase_change(core: int, benchmark: str, at_cycle: int) -> ScenarioEvent:
    """``core`` switches its reference stream to ``benchmark``."""
    return ScenarioEvent(PHASE, core, at_cycle, benchmark)


@dataclass(frozen=True)
class Scenario:
    """An immutable, hashable schedule of core arrival/departure/phase
    events, sorted by time (ties keep declaration order)."""

    name: str
    events: tuple[ScenarioEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: e.at_cycle)
        )
        object.__setattr__(self, "events", ordered)
        self._check_per_core_ordering()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _check_per_core_ordering(self) -> None:
        arrived: dict[int, int] = {}
        departed: dict[int, int] = {}
        for event in self.events:
            core = event.core
            if core in departed:
                raise ValueError(
                    f"{self.name}: core {core} has events after its departure"
                )
            if event.kind == ARRIVE:
                if core in arrived:
                    raise ValueError(
                        f"{self.name}: core {core} arrives more than once"
                    )
                arrived[core] = event.at_cycle
            else:
                if core not in arrived:
                    # Also catches events scheduled before the arrival:
                    # the cycle sort puts them first, so they hit this
                    # check with the core still unarrived.
                    raise ValueError(
                        f"{self.name}: core {core} must arrive before "
                        f"{event.kind} events"
                    )
                if event.kind == DEPART:
                    departed[core] = event.at_cycle
        if not arrived:
            raise ValueError(f"{self.name}: scenario has no arrivals")

    def validate(self, n_cores: int) -> None:
        """Check the scenario fits a machine with ``n_cores`` slots."""
        for event in self.events:
            if event.core >= n_cores:
                raise ValueError(
                    f"{self.name}: event {event.describe()} names core "
                    f"{event.core} on a {n_cores}-core machine"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def arrival_of(self, core: int) -> ScenarioEvent | None:
        """The arrival event of ``core``, or None if it never arrives."""
        for event in self.events:
            if event.kind == ARRIVE and event.core == core:
                return event
        return None

    def arrival_benchmarks(self, n_cores: int) -> list[str | None]:
        """Per-slot benchmark at arrival (None for absent slots)."""
        names: list[str | None] = [None] * n_cores
        for event in self.events:
            if event.kind == ARRIVE:
                names[event.core] = event.benchmark
        return names

    def benchmarks_used(self) -> tuple[str, ...]:
        """Every benchmark any event references, in first-use order."""
        seen: list[str] = []
        for event in self.events:
            if event.benchmark and event.benchmark not in seen:
                seen.append(event.benchmark)
        return tuple(seen)

    def dynamic_events(self) -> tuple[ScenarioEvent, ...]:
        """Events the run loop must apply (everything but cycle-0 arrivals)."""
        return tuple(
            event
            for event in self.events
            if not (event.kind == ARRIVE and event.at_cycle == 0)
        )

    @property
    def is_static(self) -> bool:
        """True when every event is an arrival at cycle 0 (the classic
        fixed-workload run — must stay bit-identical to it)."""
        return all(
            event.kind == ARRIVE and event.at_cycle == 0 for event in self.events
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def static(cls, benchmarks: Sequence[str], name: str = "static") -> "Scenario":
        """The degenerate scenario: all cores arrive at 0, nothing else."""
        return cls(
            name=name,
            events=tuple(
                core_arrive(core, benchmark, 0)
                for core, benchmark in enumerate(benchmarks)
            ),
        )


# ----------------------------------------------------------------------
# Schedule presets
# ----------------------------------------------------------------------
def consolidation_scenario(
    benchmarks: Sequence[str],
    depart_cores: Iterable[int],
    depart_cycle: int,
    name: str = "consolidation",
) -> Scenario:
    """All cores arrive at 0; ``depart_cores`` leave at ``depart_cycle``.

    The data-centre consolidation shape: load drains off some cores
    mid-run and a gating policy should turn their ways off.
    """
    events = [core_arrive(c, b, 0) for c, b in enumerate(benchmarks)]
    events.extend(core_depart(core, depart_cycle) for core in depart_cores)
    return Scenario(name=name, events=tuple(events))


def arrival_scenario(
    benchmarks: Sequence[str],
    late_core: int,
    arrive_cycle: int,
    name: str = "arrival",
) -> Scenario:
    """``late_core`` joins at ``arrive_cycle``; the rest start at 0.

    Before the arrival the late slot is idle, so a gating policy keeps
    its share powered off; the arrival must win ways back.
    """
    events = []
    for core, benchmark in enumerate(benchmarks):
        cycle = arrive_cycle if core == late_core else 0
        events.append(core_arrive(core, benchmark, cycle))
    return Scenario(name=name, events=tuple(events))


def phased_scenario(
    benchmarks: Sequence[str],
    core: int,
    phase_benchmarks: Sequence[str],
    phase_cycles: Sequence[int],
    name: str = "phased",
) -> Scenario:
    """All cores arrive at 0; ``core`` re-profiles at each phase cycle."""
    if len(phase_benchmarks) != len(phase_cycles):
        raise ValueError("need one cycle per phase benchmark")
    events = [core_arrive(c, b, 0) for c, b in enumerate(benchmarks)]
    events.extend(
        phase_change(core, benchmark, cycle)
        for benchmark, cycle in zip(phase_benchmarks, phase_cycles)
    )
    return Scenario(name=name, events=tuple(events))
