"""The committed scenario corpus: schema-versioned specs, eager loads.

``src/repro/scenarios/corpus/`` holds one JSON spec file per named
scenario (written by :func:`repro.scenarios.generate.write_corpus`).
This module is the read side: every file is validated **eagerly** at
load time — schema version, document fields, every event, machine
fit and benchmark names — and any problem raises :class:`CorpusError`
naming the offending file (and event index, where one is at fault)
so a corrupt corpus never propagates into a suite run silently.

The corpus is data, not code: adding a scenario means committing one
more spec file (see ``docs/scenarios.md``, "Adding a named scenario"),
and everything downstream — ``repro scenario --suite``, the
differential harness, the golden corpus fixture — picks it up by name.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping

from repro.scenarios.generate import CORPUS_SCHEMA
from repro.scenarios.model import Scenario, ScenarioEvent


class CorpusError(ValueError):
    """A corpus spec file failed eager validation (the message names
    the offending file, and the offending event where one is at
    fault)."""


#: required document fields and their types
_REQUIRED_FIELDS = {
    "schema": int,
    "name": str,
    "shape": str,
    "n_cores": int,
    "seed": int,
    "window_start_cycles": int,
    "horizon_cycles": int,
    "scenario": dict,
}

#: required event fields (benchmark is nullable for departures)
_EVENT_FIELDS = ("kind", "core", "at_cycle")


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One validated corpus scenario plus its spec metadata."""

    name: str
    shape: str
    n_cores: int
    seed: int
    window_start_cycles: int
    horizon_cycles: int
    scenario: Scenario
    path: Path


def corpus_dir() -> Path:
    """The committed corpus directory inside the installed package."""
    return Path(__file__).parent / "corpus"


def _fail(path: Path, message: str) -> CorpusError:
    return CorpusError(f"corpus spec {path}: {message}")


def _parse_events(path: Path, documents: list) -> tuple[ScenarioEvent, ...]:
    events = []
    for index, event in enumerate(documents):
        if not isinstance(event, Mapping):
            raise _fail(
                path, f"event #{index} must be an object, got {event!r}"
            )
        missing = [key for key in _EVENT_FIELDS if key not in event]
        if missing:
            raise _fail(
                path,
                f"event #{index} {dict(event)!r} is missing "
                f"field(s) {', '.join(missing)}",
            )
        try:
            events.append(
                ScenarioEvent(
                    kind=event["kind"],
                    core=event["core"],
                    at_cycle=event["at_cycle"],
                    benchmark=event.get("benchmark"),
                )
            )
        except (TypeError, ValueError) as error:
            raise _fail(
                path, f"event #{index} {dict(event)!r} is invalid: {error}"
            ) from error
    return tuple(events)


def load_spec(path: str | Path) -> CorpusEntry:
    """Load and eagerly validate one corpus spec file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        raise _fail(path, f"unreadable: {error}") from error
    except json.JSONDecodeError as error:
        raise _fail(path, f"not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise _fail(path, f"must be a JSON object, got {type(data).__name__}")
    for field, expected in _REQUIRED_FIELDS.items():
        if field not in data:
            raise _fail(path, f"missing field {field!r}")
        if not isinstance(data[field], expected) or isinstance(
            data[field], bool
        ):
            raise _fail(
                path,
                f"field {field!r} must be {expected.__name__}, got "
                f"{data[field]!r}",
            )
    if data["schema"] != CORPUS_SCHEMA:
        raise _fail(
            path,
            f"schema version {data['schema']} is not the supported "
            f"version {CORPUS_SCHEMA}; regenerate the corpus with "
            f"`python -m repro.scenarios.generate`",
        )
    document = data["scenario"]
    if "name" not in document or "events" not in document:
        raise _fail(path, "scenario document needs 'name' and 'events'")
    if not isinstance(document["events"], list):
        raise _fail(path, "scenario 'events' must be a list")
    events = _parse_events(path, document["events"])
    try:
        scenario = Scenario(name=document["name"], events=events)
        scenario.validate(data["n_cores"])
    except ValueError as error:
        raise _fail(path, str(error)) from error
    from repro.workloads.profiles import BENCHMARK_PROFILES

    unknown = [
        benchmark
        for benchmark in scenario.benchmarks_used()
        if benchmark not in BENCHMARK_PROFILES
    ]
    if unknown:
        raise _fail(
            path, f"unknown benchmark(s): {', '.join(sorted(unknown))}"
        )
    if data["name"] != path.stem:
        raise _fail(
            path, f"spec name {data['name']!r} does not match the filename"
        )
    return CorpusEntry(
        name=data["name"],
        shape=data["shape"],
        n_cores=data["n_cores"],
        seed=data["seed"],
        window_start_cycles=data["window_start_cycles"],
        horizon_cycles=data["horizon_cycles"],
        scenario=scenario,
        path=path,
    )


def load_corpus(directory: str | Path | None = None) -> dict[str, CorpusEntry]:
    """Load the whole corpus, keyed by scenario name, in name order.

    Every file is validated eagerly; the first invalid file fails the
    load with a :class:`CorpusError` naming it.
    """
    directory = Path(directory) if directory is not None else corpus_dir()
    if not directory.is_dir():
        raise CorpusError(f"corpus directory {directory} does not exist")
    entries: dict[str, CorpusEntry] = {}
    for path in sorted(directory.glob("*.json")):
        entry = load_spec(path)
        if entry.name in entries:
            raise _fail(path, f"duplicate scenario name {entry.name!r}")
        entries[entry.name] = entry
    if not entries:
        raise CorpusError(f"corpus directory {directory} holds no spec files")
    return entries


def corpus_names(directory: str | Path | None = None) -> tuple[str, ...]:
    """Every corpus scenario name, sorted."""
    return tuple(load_corpus(directory))


def corpus_scenario(
    name: str, directory: str | Path | None = None
) -> CorpusEntry:
    """One corpus entry by name; unknown names list what exists."""
    entries = load_corpus(directory)
    try:
        return entries[name]
    except KeyError:
        raise CorpusError(
            f"unknown corpus scenario {name!r}; the corpus holds: "
            f"{', '.join(entries)}"
        ) from None
