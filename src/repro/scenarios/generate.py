"""Seeded random scenario generation and the committed corpus.

The scenario engine accepts *any* structurally legal schedule, but
hand-written presets only ever exercise three shapes.  This module
generates legal schedules at scale: :func:`generate_scenario` draws a
:class:`~repro.scenarios.model.Scenario` from a seeded RNG for any
core count, in one of six **shapes** that cover the space the engine
has to survive:

* ``storm`` — clustered arrival and departure waves: one cohort is
  present from cycle 0, one arrives in a tight burst, one departs in a
  tight burst;
* ``consolidation`` — everybody starts, then a majority departs
  within a short window (the bursty data-centre drain);
* ``churn`` — full occupancy with heavy phase-change traffic: every
  core re-profiles repeatedly while the mix stays resident;
* ``diurnal`` — a load curve: staggered ramp-up arrivals early,
  staggered ramp-down departures late, like a day of traffic;
* ``sparse`` — under-committed machines: slots that never arrive and
  slots that arrive only to depart again almost immediately;
* ``mixed`` — per-core behaviour drawn independently from the whole
  space (the hypothesis-style worst case).

Determinism is a contract, not an accident: the RNG is seeded from a
CRC32 of ``(seed, n_cores, shape)`` — exactly the scheme the trace
generator uses — so the same call produces the same schedule on every
platform, interpreter and session, and the emitted spec JSON is
**byte-identical** across regenerations.  Core 0 always arrives at
cycle 0, which anchors every schedule to a non-empty machine.

Event *times* are drawn as fractions and only then scaled onto
``[window_start_cycles, horizon_cycles]``.  That split matters
because the timeline only observes the post-warmup measurement
window, whose position depends strongly on the benchmark mix (from
~100k to several million cycles for the same ref budget).  The corpus
writer therefore **probes** each scenario's arrival mix once
(:func:`measurement_window`) and re-scales the same fractional
schedule into the observable window — the RNG stream never depends on
the window, so the draw is identical either way.

The committed corpus under ``src/repro/scenarios/corpus/`` is just
this generator at pinned seeds: 5 shapes × {2, 4} cores × 5 seeds =
50 named scenarios, written by :func:`write_corpus` (``python -m
repro.scenarios.generate``) in the schema-versioned spec format that
:mod:`repro.scenarios.corpus` validates eagerly on load.  ``repro
scenario --suite`` runs policy × governor combinations over it and
feeds every result through the differential invariant harness
(:mod:`repro.bench.differential`).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Sequence

from repro.scenarios.model import (
    Scenario,
    ScenarioEvent,
    core_arrive,
    core_depart,
    phase_change,
)

#: the generator's schedule shapes, in documentation order
SCENARIO_SHAPES = (
    "storm",
    "consolidation",
    "churn",
    "diurnal",
    "sparse",
    "mixed",
)

#: benchmark pool the generator draws from by default: a deliberate
#: spread over the MPKI classes (streaming, capacity, tiny) that keeps
#: the trace cache small across a 50-scenario suite
DEFAULT_POOL = (
    "gcc",
    "lbm",
    "libquantum",
    "mcf",
    "milc",
    "namd",
    "povray",
    "soplex",
)

#: corpus spec-file schema; bump on incompatible layout changes
CORPUS_SCHEMA = 1

#: pinned generator seeds behind the committed corpus
CORPUS_SEEDS = (0, 1, 2, 3, 4)

#: machine sizes the corpus spans
CORPUS_CORE_COUNTS = (2, 4)

#: corpus shapes ("mixed" is left to the property-based tests, which
#: draw fresh seeds every run instead of pinning five)
CORPUS_SHAPES = tuple(shape for shape in SCENARIO_SHAPES if shape != "mixed")

#: suite-sized ref budgets the corpus is calibrated against (the
#: differential harness runs corpus scenarios at these sizes)
CORPUS_REFS = {2: 6_000, 4: 5_000}

#: suite epoch length — several epochs inside even the fastest mix
CORPUS_EPOCH_CYCLES = 60_000


def _rng(seed: int, n_cores: int, shape: str):
    """The generator's deterministic RNG (CRC32-keyed like traces,
    via the shared :mod:`repro.workloads.seeding` helper).

    The key deliberately excludes the cycle window: times are drawn as
    fractions, so re-scaling a schedule onto a different window keeps
    every structural draw (benchmarks, presence, event counts) intact.
    The ``shift=32`` layout keeps the CRC and the seed in disjoint bit
    ranges — the historical key space, pinned byte-for-byte by the
    committed corpus.
    """
    from repro.workloads.seeding import stable_rng

    return stable_rng(f"scenario:{seed}:{n_cores}:{shape}", seed, shift=32)


def generate_scenario(
    seed: int,
    n_cores: int = 2,
    shape: str = "mixed",
    *,
    horizon_cycles: int = 2_800_000,
    window_start_cycles: int = 0,
    benchmarks: Sequence[str] | None = None,
    name: str | None = None,
) -> Scenario:
    """Draw one structurally legal scenario from a seeded RNG.

    ``shape`` selects the schedule family (:data:`SCENARIO_SHAPES`);
    timed events land inside ``[window_start_cycles, horizon_cycles]``
    (arrivals "from the start" stay at cycle 0); ``benchmarks`` is the
    pool event streams are drawn from (default :data:`DEFAULT_POOL`).
    The same ``(seed, n_cores, shape, benchmarks)`` always draws the
    same schedule *structure* — byte-identical through
    ``scenario_to_dict`` for equal windows — and core 0 is guaranteed
    to arrive at cycle 0, so the schedule is legal on any machine with
    at least ``n_cores`` slots.
    """
    if shape not in SCENARIO_SHAPES:
        raise ValueError(
            f"unknown scenario shape {shape!r}; one of {SCENARIO_SHAPES}"
        )
    if n_cores < 1:
        raise ValueError(f"n_cores must be positive, got {n_cores}")
    if horizon_cycles < 1000:
        raise ValueError(
            f"horizon_cycles must be at least 1000, got {horizon_cycles}"
        )
    if not 0 <= window_start_cycles < horizon_cycles:
        raise ValueError(
            f"window_start_cycles must lie in [0, horizon_cycles), got "
            f"{window_start_cycles} vs {horizon_cycles}"
        )
    pool = tuple(benchmarks) if benchmarks is not None else DEFAULT_POOL
    if not pool:
        raise ValueError("benchmark pool must not be empty")
    rng = _rng(seed, n_cores, shape)
    builder = _SHAPE_BUILDERS[shape]
    drafts = builder(rng, n_cores, pool)
    events = _materialise(drafts, window_start_cycles, horizon_cycles)
    return Scenario(
        name=name or f"{shape}-{n_cores}c-s{seed:03d}",
        events=tuple(events),
    )


# ----------------------------------------------------------------------
# Shape builders.  Every builder anchors core 0 at cycle 0 and emits
# draft events whose times are *fractions* of the eventual window (or
# ``None`` for "present from the start"), kept in per-core causal
# order; :func:`_materialise` scales them onto real cycles and bumps
# collisions, so the schedules are legal by construction (one arrival,
# phases after it, at most one departure, nothing after the departure).
# ----------------------------------------------------------------------
#: (kind, core, fraction-or-None, benchmark-or-None)
_Draft = tuple[str, int, "float | None", "str | None"]


def _frac(rng, lo: float, hi: float) -> float:
    """A time fraction drawn uniformly from [lo, hi]."""
    return lo + rng.random() * (hi - lo)


def _storm(rng, n_cores, pool) -> list[_Draft]:
    """Clustered arrival and departure waves."""
    arrive_wave = _frac(rng, 0.10, 0.45)
    depart_wave = _frac(rng, 0.55, 0.88)
    burst = 0.01
    drafts: list[_Draft] = [("arrive", 0, None, rng.choice(pool))]
    for core in range(1, n_cores):
        if rng.random() < 0.5:  # in the arrival storm
            when = arrive_wave + rng.random() * burst
        else:  # present from the start
            when = None
        drafts.append(("arrive", core, when, rng.choice(pool)))
        if rng.random() < 0.6:  # in the departure storm
            drafts.append(
                ("depart", core, depart_wave + rng.random() * burst, None)
            )
    return drafts


def _consolidation(rng, n_cores, pool) -> list[_Draft]:
    """Everybody starts; a majority drains in one short burst."""
    drain = _frac(rng, 0.25, 0.70)
    burst = 0.02
    drafts: list[_Draft] = [
        ("arrive", core, None, rng.choice(pool)) for core in range(n_cores)
    ]
    departing = max(1, n_cores - 1 if n_cores > 2 else 1)
    cores = list(range(1, n_cores))
    rng.shuffle(cores)
    for core in cores[:departing]:
        drafts.append(("depart", core, drain + rng.random() * burst, None))
    return drafts


def _churn(rng, n_cores, pool) -> list[_Draft]:
    """Full occupancy, heavy phase-change traffic."""
    drafts: list[_Draft] = [
        ("arrive", core, None, rng.choice(pool)) for core in range(n_cores)
    ]
    for core in range(n_cores):
        cursor = 0.0
        for _ in range(rng.randrange(2, 6)):
            cursor += 0.03 + rng.random() * 0.25
            if cursor > 0.88:
                break
            drafts.append(("phase", core, cursor, rng.choice(pool)))
    return drafts


def _diurnal(rng, n_cores, pool) -> list[_Draft]:
    """Staggered ramp-up arrivals, staggered ramp-down departures."""
    drafts: list[_Draft] = [("arrive", 0, None, rng.choice(pool))]
    late = list(range(1, n_cores))
    ramps = sorted(_frac(rng, 0.05, 0.35) for _ in late)
    drains = sorted((_frac(rng, 0.60, 0.90) for _ in late), reverse=True)
    for core, arrive_frac, depart_frac in zip(late, ramps, drains):
        drafts.append(("arrive", core, arrive_frac, rng.choice(pool)))
        if depart_frac > arrive_frac and rng.random() < 0.8:
            drafts.append(("depart", core, depart_frac, None))
    return drafts


def _sparse(rng, n_cores, pool) -> list[_Draft]:
    """Under-committed machine: absent slots, fleeting visitors."""
    drafts: list[_Draft] = [("arrive", 0, None, rng.choice(pool))]
    for core in range(1, n_cores):
        fate = rng.random()
        if fate < 0.35:  # never arrives — dark slot from cycle 0
            continue
        if fate < 0.75:  # arrive-then-depart visitor
            arrive_frac = _frac(rng, 0.05, 0.55)
            stay = 0.005 + rng.random() * 0.12
            drafts.append(("arrive", core, arrive_frac, rng.choice(pool)))
            drafts.append(
                ("depart", core, min(arrive_frac + stay, 0.90), None)
            )
        else:  # resident from the start
            drafts.append(("arrive", core, None, rng.choice(pool)))
    return drafts


def _mixed(rng, n_cores, pool) -> list[_Draft]:
    """Per-core behaviour drawn independently from the whole space."""
    drafts: list[_Draft] = [("arrive", 0, None, rng.choice(pool))]
    cursor = 0.0
    for _ in range(rng.randrange(0, 3)):  # phases on the anchor core
        cursor += 0.02 + rng.random() * 0.30
        if cursor > 0.88:
            break
        drafts.append(("phase", 0, cursor, rng.choice(pool)))
    for core in range(1, n_cores):
        presence = rng.choice(("start", "late", "absent"))
        if presence == "absent":
            continue
        cursor = 0.0 if presence == "start" else _frac(rng, 0.02, 0.60)
        when = None if presence == "start" else cursor
        drafts.append(("arrive", core, when, rng.choice(pool)))
        for _ in range(rng.randrange(0, 3)):
            cursor += 0.02 + rng.random() * 0.25
            if cursor > 0.88:
                break
            if rng.random() < 0.35:
                drafts.append(("depart", core, cursor, None))
                break
            drafts.append(("phase", core, cursor, rng.choice(pool)))
    return drafts


_SHAPE_BUILDERS = {
    "storm": _storm,
    "consolidation": _consolidation,
    "churn": _churn,
    "diurnal": _diurnal,
    "sparse": _sparse,
    "mixed": _mixed,
}


def _materialise(
    drafts: list[_Draft], window_start: int, horizon: int
) -> list[ScenarioEvent]:
    """Scale fractional draft times onto ``[window_start, horizon]``.

    Per-core times are bumped to stay strictly increasing after
    integer rounding, which preserves the builders' causal order
    (arrival first, departure last) whatever the window size.
    """
    span = horizon - window_start
    last_cycle: dict[int, int] = {}
    events: list[ScenarioEvent] = []
    for kind, core, when, benchmark in drafts:
        if when is None:
            cycle = 0
        else:
            cycle = window_start + int(round(when * span))
            cycle = max(1, min(cycle, horizon))
            previous = last_cycle.get(core)
            if previous is not None and cycle <= previous:
                cycle = previous + 1
        last_cycle[core] = cycle
        if kind == "arrive":
            events.append(core_arrive(core, benchmark, cycle))
        elif kind == "phase":
            events.append(phase_change(core, benchmark, cycle))
        else:
            events.append(core_depart(core, cycle))
    return events


# ----------------------------------------------------------------------
# Window calibration (the probe behind the committed corpus)
# ----------------------------------------------------------------------
def corpus_config(n_cores: int):
    """The machine the corpus is calibrated for (and the suite runs)."""
    from repro.sim.config import scaled_four_core, scaled_two_core

    if n_cores not in CORPUS_REFS:
        raise ValueError(
            f"the corpus covers {CORPUS_CORE_COUNTS}-core machines, "
            f"got {n_cores}"
        )
    base = scaled_two_core if n_cores == 2 else scaled_four_core
    return dataclasses.replace(
        base(refs_per_core=CORPUS_REFS[n_cores]),
        epoch_cycles=CORPUS_EPOCH_CYCLES,
    )


def measurement_window(
    scenario: Scenario, n_cores: int, runner=None
) -> tuple[int, int]:
    """The observable cycle window of a scenario's arrival mix.

    Runs the mix statically (all arriving cores resident from cycle 0,
    unmanaged, no governor) on the corpus machine and reads off the
    first post-warmup timeline boundary and the end cycle.  Event
    times scaled into this window actually *fire inside the measured
    region*, whatever the mix's speed — the whole point of the
    fraction-based draw.
    """
    from repro.experiment import Experiment
    from repro.sim.runner import ExperimentRunner

    if runner is None:
        runner = ExperimentRunner()
    arrivals = scenario.arrival_benchmarks(n_cores)
    probe = Scenario(
        name="window-probe",
        events=tuple(
            core_arrive(core, benchmark, 0)
            for core, benchmark in enumerate(arrivals)
            if benchmark is not None
        ),
    )
    run = runner.run(
        Experiment.for_scenario(
            probe, system=corpus_config(n_cores), policy="unmanaged"
        )
    )
    start = run.timeline[0].cycle if run.timeline else 0
    return start, run.end_cycle


# ----------------------------------------------------------------------
# Corpus specs
# ----------------------------------------------------------------------
def scenario_spec(
    scenario: Scenario,
    *,
    shape: str,
    n_cores: int,
    seed: int,
    window_start_cycles: int,
    horizon_cycles: int,
) -> dict[str, Any]:
    """The schema-versioned corpus document for one generated scenario."""
    from repro.orchestration.serialize import scenario_to_dict

    return {
        "schema": CORPUS_SCHEMA,
        "name": scenario.name,
        "shape": shape,
        "n_cores": n_cores,
        "seed": seed,
        "window_start_cycles": window_start_cycles,
        "horizon_cycles": horizon_cycles,
        "scenario": scenario_to_dict(scenario),
    }


def render_spec(spec: dict[str, Any]) -> str:
    """Canonical byte representation of a corpus spec file."""
    return json.dumps(spec, indent=2, sort_keys=True) + "\n"


def pinned_corpus_names() -> list[str]:
    """Every pinned corpus scenario name, in generation order."""
    return [
        f"{shape}-{n_cores}c-s{seed:03d}"
        for shape in CORPUS_SHAPES
        for n_cores in CORPUS_CORE_COUNTS
        for seed in CORPUS_SEEDS
    ]


def corpus_specs(
    names: Sequence[str] | None = None, runner=None
) -> list[dict[str, Any]]:
    """The pinned corpus: 5 shapes × {2, 4} cores × 5 seeds.

    Each scenario's arrival mix is probed once to calibrate the event
    window (:func:`measurement_window`); ``names`` restricts the build
    (and its probes) to a subset.  Deterministic end to end: the same
    checkout regenerates byte-identical specs.
    """
    from repro.sim.runner import ExperimentRunner

    if runner is None:
        runner = ExperimentRunner()
    wanted = set(names) if names is not None else None
    specs = []
    for shape in CORPUS_SHAPES:
        for n_cores in CORPUS_CORE_COUNTS:
            for seed in CORPUS_SEEDS:
                name = f"{shape}-{n_cores}c-s{seed:03d}"
                if wanted is not None and name not in wanted:
                    continue
                draft = generate_scenario(seed, n_cores, shape)
                start, end = measurement_window(draft, n_cores, runner)
                scenario = generate_scenario(
                    seed,
                    n_cores,
                    shape,
                    horizon_cycles=end,
                    window_start_cycles=start,
                )
                specs.append(
                    scenario_spec(
                        scenario,
                        shape=shape,
                        n_cores=n_cores,
                        seed=seed,
                        window_start_cycles=start,
                        horizon_cycles=end,
                    )
                )
    return specs


def write_corpus(directory: str | Path | None = None, progress=print) -> list[Path]:
    """(Re)generate every corpus spec file; returns the written paths.

    Writing is deterministic: regenerating over a clean checkout is a
    byte-level no-op (pinned by ``tests/differential/test_corpus.py``).
    """
    if directory is None:
        directory = Path(__file__).parent / "corpus"
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for spec in corpus_specs():
        path = directory / f"{spec['name']}.json"
        path.write_text(render_spec(spec))
        written.append(path)
        if progress is not None:
            progress(f"wrote {path}")
    return written


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    import sys

    write_corpus(sys.argv[1] if len(sys.argv) > 1 else None)
