"""Per-epoch timeline series recorded by scenario-aware runs.

The paper's most interesting cooperative-partitioning behaviours are
*timelines* (Figures 14-16): what happens while the workload mix
changes.  A scenario run records one :class:`TimelineSample` at the
end of warmup, at every partitioning epoch, at every schedule event
and at run end, so the figures' dynamic quantities — active cores, way
allocations, powered ways, integrated energy — can be plotted against
time directly.

Samples are observations only: recording them never mutates simulator
state, which is what lets the degenerate static scenario stay
bit-identical to the classic fixed-workload runs (those simply record
no samples unless asked to).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass(frozen=True)
class TimelineSample:
    """One observation of the machine state at a point in time."""

    #: simulator cycle of the observation
    cycle: int
    #: core slots currently executing
    active_cores: tuple[int, ...]
    #: per-slot way allocation (policy view: ways a core may fill)
    allocations: tuple[int, ...]
    #: ways currently drawing leakage power
    powered_ways: int
    #: static energy integrated up to this cycle (current window)
    static_energy_nj: float
    #: dynamic energy accumulated up to this cycle (current window)
    dynamic_energy_nj: float
    #: labels of schedule events applied at this cycle ("" = epoch tick)
    events: tuple[str, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (lossless)."""
        return {
            "cycle": self.cycle,
            "active_cores": list(self.active_cores),
            "allocations": list(self.allocations),
            "powered_ways": self.powered_ways,
            "static_energy_nj": self.static_energy_nj,
            "dynamic_energy_nj": self.dynamic_energy_nj,
            "events": list(self.events),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TimelineSample":
        """Rebuild a sample from :meth:`to_dict` output."""
        return cls(
            cycle=data["cycle"],
            active_cores=tuple(data["active_cores"]),
            allocations=tuple(data["allocations"]),
            powered_ways=data["powered_ways"],
            static_energy_nj=data["static_energy_nj"],
            dynamic_energy_nj=data["dynamic_energy_nj"],
            events=tuple(data["events"]),
        )


# ----------------------------------------------------------------------
# Series helpers (consumed by benchmarks, the CLI and tests)
# ----------------------------------------------------------------------
def powered_ways_series(timeline: Sequence[TimelineSample]) -> list[tuple[int, int]]:
    """``(cycle, powered_ways)`` pairs in time order."""
    return [(sample.cycle, sample.powered_ways) for sample in timeline]


def min_powered_ways(timeline: Sequence[TimelineSample]) -> int:
    """Smallest powered-way count observed (0 for an empty timeline)."""
    if not timeline:
        return 0
    return min(sample.powered_ways for sample in timeline)


def powered_ways_dropped(timeline: Sequence[TimelineSample]) -> bool:
    """Whether the powered-way count ever fell below its first sample."""
    if not timeline:
        return False
    return min_powered_ways(timeline) < timeline[0].powered_ways


def samples_with_events(
    timeline: Sequence[TimelineSample],
) -> list[TimelineSample]:
    """Samples recorded because a schedule event fired."""
    return [sample for sample in timeline if sample.events]


def static_energy_deltas(timeline: Sequence[TimelineSample]) -> list[float]:
    """Per-interval static energy between consecutive samples."""
    deltas: list[float] = []
    for previous, current in zip(timeline, timeline[1:]):
        deltas.append(current.static_energy_nj - previous.static_energy_nj)
    return deltas


def render_timeline(timeline: Sequence[TimelineSample], ways: int) -> str:
    """Fixed-width text table of a timeline (CLI / example output)."""
    lines = [
        f"{'cycle':>12} {'active':<14} {'allocs':<20} "
        f"{'powered':>8} {'static nJ':>12}  events"
    ]
    for sample in timeline:
        active = ",".join(str(c) for c in sample.active_cores) or "-"
        allocations = "/".join(str(a) for a in sample.allocations)
        events = " ".join(sample.events)
        lines.append(
            f"{sample.cycle:>12} {active:<14} {allocations:<20} "
            f"{sample.powered_ways:>5}/{ways:<2} {sample.static_energy_nj:>12.1f}  {events}"
        )
    return "\n".join(lines)
