"""Per-epoch timeline series recorded by scenario-aware runs.

The paper's most interesting cooperative-partitioning behaviours are
*timelines* (Figures 14-16): what happens while the workload mix
changes.  A scenario run records one :class:`TimelineSample` at the
end of warmup, at every partitioning epoch, at every schedule event
and at run end, so the figures' dynamic quantities — active cores, way
allocations, powered ways, integrated energy — can be plotted against
time directly.

Samples are observations only: recording them never mutates simulator
state, which is what lets the degenerate static scenario stay
bit-identical to the classic fixed-workload runs (those simply record
no samples unless asked to).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass(frozen=True)
class TimelineSample:
    """One observation of the machine state at a point in time."""

    #: simulator cycle of the observation
    cycle: int
    #: core slots currently executing
    active_cores: tuple[int, ...]
    #: per-slot way allocation (policy view: ways a core may fill)
    allocations: tuple[int, ...]
    #: ways currently drawing leakage power
    powered_ways: int
    #: static energy integrated up to this cycle (current window)
    static_energy_nj: float
    #: dynamic energy accumulated up to this cycle (current window)
    dynamic_energy_nj: float
    #: labels of schedule events applied at this cycle ("" = epoch tick)
    events: tuple[str, ...] = field(default_factory=tuple)
    #: per-slot core frequency in MHz (DVFS runs only; 0 = gated core,
    #: empty tuple = run without a governor)
    frequencies_mhz: tuple[int, ...] = field(default_factory=tuple)
    #: per-slot core voltage in mV (parallel to ``frequencies_mhz``)
    voltages_mv: tuple[int, ...] = field(default_factory=tuple)
    #: core dynamic + static energy integrated up to this cycle (DVFS
    #: runs only; 0.0 without a governor)
    core_energy_nj: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (lossless).

        The DVFS fields are emitted only when a governor produced
        them, so pre-DVFS artifacts and fixtures keep their exact
        historical shape.
        """
        payload = {
            "cycle": self.cycle,
            "active_cores": list(self.active_cores),
            "allocations": list(self.allocations),
            "powered_ways": self.powered_ways,
            "static_energy_nj": self.static_energy_nj,
            "dynamic_energy_nj": self.dynamic_energy_nj,
            "events": list(self.events),
        }
        if self.frequencies_mhz:
            payload["frequencies_mhz"] = list(self.frequencies_mhz)
            payload["voltages_mv"] = list(self.voltages_mv)
            payload["core_energy_nj"] = self.core_energy_nj
        return payload

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TimelineSample":
        """Rebuild a sample from :meth:`to_dict` output."""
        return cls(
            cycle=data["cycle"],
            active_cores=tuple(data["active_cores"]),
            allocations=tuple(data["allocations"]),
            powered_ways=data["powered_ways"],
            static_energy_nj=data["static_energy_nj"],
            dynamic_energy_nj=data["dynamic_energy_nj"],
            events=tuple(data["events"]),
            frequencies_mhz=tuple(data.get("frequencies_mhz", ())),
            voltages_mv=tuple(data.get("voltages_mv", ())),
            core_energy_nj=data.get("core_energy_nj", 0.0),
        )


# ----------------------------------------------------------------------
# Series helpers (consumed by benchmarks, the CLI and tests)
# ----------------------------------------------------------------------
def powered_ways_series(timeline: Sequence[TimelineSample]) -> list[tuple[int, int]]:
    """``(cycle, powered_ways)`` pairs in time order."""
    return [(sample.cycle, sample.powered_ways) for sample in timeline]


def min_powered_ways(timeline: Sequence[TimelineSample]) -> int:
    """Smallest powered-way count observed (0 for an empty timeline)."""
    if not timeline:
        return 0
    return min(sample.powered_ways for sample in timeline)


def powered_ways_dropped(timeline: Sequence[TimelineSample]) -> bool:
    """Whether the powered-way count ever fell below its first sample."""
    if not timeline:
        return False
    return min_powered_ways(timeline) < timeline[0].powered_ways


def samples_with_events(
    timeline: Sequence[TimelineSample],
) -> list[TimelineSample]:
    """Samples recorded because a schedule event fired."""
    return [sample for sample in timeline if sample.events]


def frequency_series(
    timeline: Sequence[TimelineSample],
) -> list[tuple[int, tuple[int, ...]]]:
    """``(cycle, per-core frequency MHz)`` pairs in time order (DVFS
    runs; empty for runs without a governor)."""
    return [
        (sample.cycle, sample.frequencies_mhz)
        for sample in timeline
        if sample.frequencies_mhz
    ]


def voltage_series(
    timeline: Sequence[TimelineSample],
) -> list[tuple[int, tuple[int, ...]]]:
    """``(cycle, per-core voltage mV)`` pairs in time order."""
    return [
        (sample.cycle, sample.voltages_mv)
        for sample in timeline
        if sample.voltages_mv
    ]


def static_energy_deltas(timeline: Sequence[TimelineSample]) -> list[float]:
    """Per-interval static energy between consecutive samples."""
    deltas: list[float] = []
    for previous, current in zip(timeline, timeline[1:]):
        deltas.append(current.static_energy_nj - previous.static_energy_nj)
    return deltas


def render_timeline(timeline: Sequence[TimelineSample], ways: int) -> str:
    """Fixed-width text table of a timeline (CLI / example output).

    A frequency column appears automatically when the run carried a
    DVFS governor (any sample with a recorded frequency series).
    """
    with_dvfs = any(sample.frequencies_mhz for sample in timeline)
    header = (
        f"{'cycle':>12} {'active':<14} {'allocs':<20} "
        f"{'powered':>8} {'static nJ':>12}"
    )
    if with_dvfs:
        header += f" {'MHz':<20} {'core nJ':>12}"
    lines = [header + "  events"]
    for sample in timeline:
        active = ",".join(str(c) for c in sample.active_cores) or "-"
        allocations = "/".join(str(a) for a in sample.allocations)
        events = " ".join(sample.events)
        line = (
            f"{sample.cycle:>12} {active:<14} {allocations:<20} "
            f"{sample.powered_ways:>5}/{ways:<2} {sample.static_energy_nj:>12.1f}"
        )
        if with_dvfs:
            mhz = "/".join(str(f) for f in sample.frequencies_mhz) or "-"
            line += f" {mhz:<20} {sample.core_energy_nj:>12.1f}"
        lines.append(line + f"  {events}")
    return "\n".join(lines)
