"""Scenario engine: time-varying multiprogram schedules.

Public surface of the package:

* :class:`~repro.scenarios.model.Scenario` and the event constructors
  (:func:`core_arrive`, :func:`core_depart`, :func:`phase_change`) —
  the declarative schedule model;
* the preset builders (:func:`consolidation_scenario`,
  :func:`arrival_scenario`, :func:`phased_scenario`);
* the seeded generator (:func:`generate_scenario`, shapes in
  :data:`SCENARIO_SHAPES`) and the committed corpus readers
  (:func:`load_corpus`, :func:`corpus_scenario`, :func:`corpus_names`);
* :class:`~repro.scenarios.timeline.TimelineSample` and the series
  helpers over recorded timelines.

``ExperimentRunner.run_scenario`` executes a scenario (with store
caching) and ``repro scenario`` drives the presets, spec files and
the corpus suite from the CLI.
"""

from repro.scenarios.corpus import (
    CorpusEntry,
    CorpusError,
    corpus_names,
    corpus_scenario,
    load_corpus,
)
from repro.scenarios.generate import (
    DEFAULT_POOL,
    SCENARIO_SHAPES,
    generate_scenario,
    write_corpus,
)
from repro.scenarios.model import (
    ARRIVE,
    DEPART,
    PHASE,
    Scenario,
    ScenarioEvent,
    arrival_scenario,
    consolidation_scenario,
    core_arrive,
    core_depart,
    phase_change,
    phased_scenario,
)
from repro.scenarios.timeline import (
    TimelineSample,
    frequency_series,
    min_powered_ways,
    powered_ways_dropped,
    powered_ways_series,
    render_timeline,
    samples_with_events,
    static_energy_deltas,
    voltage_series,
)

__all__ = [
    "ARRIVE",
    "DEPART",
    "PHASE",
    "CorpusEntry",
    "CorpusError",
    "DEFAULT_POOL",
    "SCENARIO_SHAPES",
    "Scenario",
    "ScenarioEvent",
    "TimelineSample",
    "arrival_scenario",
    "consolidation_scenario",
    "core_arrive",
    "core_depart",
    "corpus_names",
    "corpus_scenario",
    "frequency_series",
    "generate_scenario",
    "load_corpus",
    "min_powered_ways",
    "phase_change",
    "phased_scenario",
    "powered_ways_dropped",
    "powered_ways_series",
    "render_timeline",
    "samples_with_events",
    "static_energy_deltas",
    "voltage_series",
    "write_corpus",
]
