"""Scenario engine: time-varying multiprogram schedules.

Public surface of the package:

* :class:`~repro.scenarios.model.Scenario` and the event constructors
  (:func:`core_arrive`, :func:`core_depart`, :func:`phase_change`) —
  the declarative schedule model;
* the preset builders (:func:`consolidation_scenario`,
  :func:`arrival_scenario`, :func:`phased_scenario`);
* :class:`~repro.scenarios.timeline.TimelineSample` and the series
  helpers over recorded timelines.

``ExperimentRunner.run_scenario`` executes a scenario (with store
caching) and ``repro scenario`` drives the presets from the CLI.
"""

from repro.scenarios.model import (
    ARRIVE,
    DEPART,
    PHASE,
    Scenario,
    ScenarioEvent,
    arrival_scenario,
    consolidation_scenario,
    core_arrive,
    core_depart,
    phase_change,
    phased_scenario,
)
from repro.scenarios.timeline import (
    TimelineSample,
    frequency_series,
    min_powered_ways,
    powered_ways_dropped,
    powered_ways_series,
    render_timeline,
    samples_with_events,
    static_energy_deltas,
    voltage_series,
)

__all__ = [
    "ARRIVE",
    "DEPART",
    "PHASE",
    "Scenario",
    "ScenarioEvent",
    "TimelineSample",
    "arrival_scenario",
    "consolidation_scenario",
    "core_arrive",
    "core_depart",
    "frequency_series",
    "min_powered_ways",
    "phase_change",
    "phased_scenario",
    "powered_ways_dropped",
    "powered_ways_series",
    "render_timeline",
    "samples_with_events",
    "static_energy_deltas",
    "voltage_series",
]
