"""Declarative experiment specs: one way to say "run this".

The paper's evaluation is a cross-product of (workload group × scheme
× geometry × threshold × scenario).  An :class:`Experiment` names one
cell of that product as a frozen, hashable value::

    Experiment(workload="G2-8",
               policy=PolicySpec("cooperative", threshold=0.1),
               system=scaled_two_core())

and every kind of run the protocol needs is a degenerate spec of the
same type:

* **group runs** — ``workload`` names a Table 4 group;
* **alone runs** — ``workload`` names a single benchmark (the system
  collapses to its one-core profiling variant, policy is Unmanaged);
* **scenario runs** — ``scenario`` carries a time-varying
  :class:`~repro.scenarios.model.Scenario` instead of a workload.

Specs validate **eagerly**: unknown groups/benchmarks/policies, group
sizes that do not match the core count, and mis-typed policy
parameters all fail at construction with actionable messages.

Normalisation makes equal runs equal values: a ``threshold`` policy
parameter folds into the system config (the paper treats T as a
system knob — ``SystemConfig.threshold`` is what policies receive),
and an alone workload collapses the config via
:meth:`~repro.sim.config.SystemConfig.alone`.  Consequently
:meth:`Experiment.task_key` reproduces the historical store keys
bit-for-bit for every built-in run shape — artifacts written by the
old string-based API resolve under the same keys, and golden fixtures
regenerate byte-identically.

Fluent builders cover the common shapes::

    Experiment.two_core("G2-8").with_policy(PolicySpec("ucp"))
    Experiment.alone_run("lbm", system=scaled_two_core())
    Experiment.for_scenario(scenario, system=config, policy="cooperative")

Serialisation (:meth:`to_dict` / :meth:`from_dict`) is lossless and
JSON-friendly; ``repro sweep --spec experiments.json`` runs a JSON
list of these documents through the store-backed executor.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.cache.geometry import CacheGeometry
from repro.dvfs.governors import GovernorSpec
from repro.partitioning.registry import PolicySpec
from repro.scenarios.model import Scenario
from repro.workloads.groups import group_benchmarks, group_names
from repro.workloads.profiles import BENCHMARK_PROFILES

if TYPE_CHECKING:
    from repro.sim.config import SystemConfig

# NOTE: repro.sim.config is imported lazily (inside the handful of
# functions that construct configs).  This module is the bottom of the
# public-API stack — repro.sim.runner and repro.orchestration both
# import it at module scope — so importing the sim package from here
# at import time would recreate the cycle the spec redesign removed.

#: Experiment.kind values
ALONE = "alone"
GROUP = "group"
SCENARIO = "scenario"

#: sentinel distinguishing "no declared default" from "default None"
_MISSING = object()


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """What runs: a Table 4 group or a single benchmark (alone run)."""

    kind: str  # "group" | "benchmark"
    name: str

    def __post_init__(self) -> None:
        if self.kind == GROUP:
            group_benchmarks(self.name)  # raises KeyError with the name
        elif self.kind == "benchmark":
            if self.name not in BENCHMARK_PROFILES:
                raise ValueError(
                    f"unknown benchmark {self.name!r}; valid: "
                    f"{', '.join(sorted(BENCHMARK_PROFILES))}"
                )
        else:
            raise ValueError(
                f"workload kind must be 'group' or 'benchmark', got {self.kind!r}"
            )

    @classmethod
    def table_group(cls, name: str) -> "WorkloadSpec":
        """A Table 4 workload group (e.g. ``"G2-8"``)."""
        return cls(GROUP, name)

    @classmethod
    def benchmark(cls, name: str) -> "WorkloadSpec":
        """A single benchmark, i.e. an isolated profiling run."""
        return cls("benchmark", name)

    @classmethod
    def coerce(cls, value: "WorkloadSpec | str") -> "WorkloadSpec":
        """Accept a spec, a group name or a benchmark name."""
        if isinstance(value, cls):
            return value
        if not isinstance(value, str):
            raise TypeError(
                f"workload must be a WorkloadSpec or a name, got {value!r}"
            )
        if value in group_names(2) or value in group_names(4):
            return cls.table_group(value)
        if value in BENCHMARK_PROFILES:
            return cls.benchmark(value)
        raise ValueError(
            f"unknown workload {value!r}: neither a Table 4 group "
            f"(G2-1..G2-14, G4-1..G4-14) nor a benchmark "
            f"({', '.join(sorted(BENCHMARK_PROFILES))})"
        )

    @property
    def benchmarks(self) -> tuple[str, ...]:
        """The per-core benchmark list this workload expands to."""
        if self.kind == GROUP:
            return group_benchmarks(self.name)
        return (self.name,)


# ----------------------------------------------------------------------
# Experiment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Experiment:
    """One fully-specified simulation: workload × policy × system
    (× optional time-varying scenario × optional DVFS governor).
    Frozen, hashable, eager."""

    workload: WorkloadSpec | None = None
    policy: PolicySpec | str = "cooperative"
    system: SystemConfig | None = None
    scenario: Scenario | None = None
    #: DVFS governor driving per-core V/f (None = nominal frequency,
    #: the historical machine — results and store keys unchanged)
    governor: GovernorSpec | str | None = None

    def __post_init__(self) -> None:
        policy = self.policy
        if isinstance(policy, str):
            policy = PolicySpec(policy)
        governor = self.governor
        if isinstance(governor, str):
            governor = GovernorSpec(governor)
        workload = self.workload
        if workload is not None:
            workload = WorkloadSpec.coerce(workload)
        if (workload is None) == (self.scenario is None):
            raise ValueError(
                "an Experiment needs exactly one of workload= (a group "
                "or benchmark) or scenario= (a time-varying schedule)"
            )
        system = self.system
        if system is None:
            system = self._infer_system(workload)
        # The takeover threshold is a system knob (policies receive
        # SystemConfig.threshold); a spec-level threshold folds into
        # the config so equal runs compare equal and store keys match
        # the historical `config.with_threshold(T)` wiring.  Folding
        # only applies to config-linked declarations (default None) —
        # a policy declaring its own non-None threshold default keeps
        # the parameter in the spec, where build_policy passes it
        # through verbatim.
        threshold = policy.non_default_params().get("threshold")
        if (
            threshold is not None
            and policy.info.param_defaults().get("threshold", _MISSING) is None
        ):
            system = system.with_threshold(float(threshold))
            remaining = policy.non_default_params()
            del remaining["threshold"]
            policy = PolicySpec(policy.name, **remaining)
        if workload is not None and workload.kind == "benchmark":
            if policy.name != "unmanaged":
                raise ValueError(
                    f"alone runs always profile under the 'unmanaged' "
                    f"policy (got {policy.name!r}); they measure the "
                    f"benchmark with the full LLC to itself"
                )
            if governor is not None:
                raise ValueError(
                    "alone runs always profile at the nominal frequency "
                    "(no governor); IPC_alone is the QoS reference every "
                    "DVFS comparison is measured against"
                )
            system = system.alone()
        elif workload is not None:
            expected = len(workload.benchmarks)
            if expected != system.n_cores:
                raise ValueError(
                    f"group {workload.name} has {expected} applications "
                    f"but the config has {system.n_cores} cores"
                )
        else:
            assert self.scenario is not None
            self.scenario.validate(system.n_cores)
            unknown = [
                name
                for name in self.scenario.benchmarks_used()
                if name not in BENCHMARK_PROFILES
            ]
            if unknown:
                raise ValueError(
                    f"scenario {self.scenario.name!r} references unknown "
                    f"benchmark(s) {', '.join(unknown)}"
                )
        object.__setattr__(self, "workload", workload)
        object.__setattr__(self, "policy", policy)
        object.__setattr__(self, "system", system)
        object.__setattr__(self, "governor", governor)

    @staticmethod
    def _infer_system(workload: WorkloadSpec | None) -> SystemConfig:
        from repro.sim.config import scaled_four_core, scaled_two_core

        if workload is not None and workload.kind == GROUP:
            n_cores = len(group_benchmarks(workload.name))
            if n_cores == 2:
                return scaled_two_core()
            if n_cores == 4:
                return scaled_four_core()
        raise ValueError(
            "system= is required (only Table 4 group experiments can "
            "infer the scaled default geometry)"
        )

    # ------------------------------------------------------------------
    # Fluent builders
    # ------------------------------------------------------------------
    @classmethod
    def two_core(
        cls,
        group: str = "G2-1",
        *,
        refs_per_core: int | None = None,
        policy: PolicySpec | str = "cooperative",
    ) -> "Experiment":
        """A group run on the scaled two-core system."""
        from repro.sim.config import scaled_two_core

        system = (
            scaled_two_core()
            if refs_per_core is None
            else scaled_two_core(refs_per_core=refs_per_core)
        )
        return cls(workload=group, policy=policy, system=system)

    @classmethod
    def four_core(
        cls,
        group: str = "G4-1",
        *,
        refs_per_core: int | None = None,
        policy: PolicySpec | str = "cooperative",
    ) -> "Experiment":
        """A group run on the scaled four-core system."""
        from repro.sim.config import scaled_four_core

        system = (
            scaled_four_core()
            if refs_per_core is None
            else scaled_four_core(refs_per_core=refs_per_core)
        )
        return cls(workload=group, policy=policy, system=system)

    @classmethod
    def alone_run(cls, benchmark: str, *, system: SystemConfig) -> "Experiment":
        """``benchmark`` profiled by itself on the full LLC."""
        return cls(
            workload=WorkloadSpec.benchmark(benchmark),
            policy="unmanaged",
            system=system,
        )

    @classmethod
    def for_scenario(
        cls,
        scenario: Scenario,
        *,
        system: SystemConfig,
        policy: PolicySpec | str = "cooperative",
        governor: GovernorSpec | str | None = None,
    ) -> "Experiment":
        """A time-varying schedule under one scheme (and optionally
        one DVFS governor)."""
        return cls(
            policy=policy, system=system, scenario=scenario, governor=governor
        )

    @classmethod
    def grid(
        cls,
        system: SystemConfig,
        groups: Sequence[str] | None = None,
        policies: Sequence[PolicySpec | str] | None = None,
        governor: GovernorSpec | str | None = None,
    ) -> list["Experiment"]:
        """The (group × policy) cross-product on one system — the
        figures' sweep shape.  Defaults: every Table 4 group of the
        system's core count, every built-in scheme in legend order.
        ``governor`` applies one DVFS governor to every cell."""
        from repro.sim.runner import ALL_POLICIES

        groups = list(groups) if groups is not None else group_names(system.n_cores)
        policies = list(policies) if policies is not None else list(ALL_POLICIES)
        return [
            cls(workload=group, policy=policy, system=system, governor=governor)
            for group in groups
            for policy in policies
        ]

    def with_policy(self, policy: PolicySpec | str) -> "Experiment":
        """Copy of this spec under a different scheme."""
        return dataclasses.replace(self, policy=policy)

    def with_governor(self, governor: GovernorSpec | str | None) -> "Experiment":
        """Copy of this spec under a different DVFS governor (None
        returns to the nominal-frequency machine)."""
        return dataclasses.replace(self, governor=governor)

    def with_system(self, system: SystemConfig) -> "Experiment":
        """Copy of this spec on a different machine."""
        return dataclasses.replace(self, system=system)

    def with_threshold(self, threshold: float) -> "Experiment":
        """Copy of this spec with a different takeover threshold."""
        assert self.system is not None
        return dataclasses.replace(
            self, system=self.system.with_threshold(threshold)
        )

    def with_refs(self, refs_per_core: int) -> "Experiment":
        """Copy of this spec with a different measured window."""
        assert self.system is not None
        return dataclasses.replace(
            self,
            system=dataclasses.replace(self.system, refs_per_core=refs_per_core),
        )

    def with_scenario(self, scenario: Scenario) -> "Experiment":
        """Copy of this spec running ``scenario`` instead of a fixed
        workload (the scenario's arrivals define what runs)."""
        return dataclasses.replace(self, workload=None, scenario=scenario)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"alone"``, ``"group"`` or ``"scenario"``."""
        if self.workload is None:
            return SCENARIO
        if self.workload.kind == "benchmark":
            return ALONE
        return GROUP

    @property
    def policy_name(self) -> str:
        """Short name of the scheme (``self.policy.name``)."""
        assert isinstance(self.policy, PolicySpec)
        return self.policy.name

    @property
    def label(self) -> str:
        """Human-readable one-liner (progress lines, CLI tables)."""
        kind = self.kind
        if kind == ALONE:
            return f"alone {self.workload.name}"
        suffix = f" +{self.governor.name}" if self.governor is not None else ""
        if kind == GROUP:
            return f"group {self.workload.name} {self.policy_name}{suffix}"
        return f"scenario {self.scenario.name} {self.policy_name}{suffix}"

    @property
    def benchmarks(self) -> tuple[str, ...]:
        """Every benchmark the run touches (scenario: all events)."""
        if self.scenario is not None:
            return self.scenario.benchmarks_used()
        assert self.workload is not None
        return self.workload.benchmarks

    def alone_dependencies(self) -> list["Experiment"]:
        """The alone runs this experiment depends on.

        Group runs depend on every member benchmark's alone run
        (weighted speedup needs IPC_alone for all of them); scenario
        runs only feed profile-driven policies (Dynamic CPE) their
        arrival benchmarks' curves; alone runs have no dependencies.
        """
        assert self.system is not None
        kind = self.kind
        if kind == ALONE:
            return []
        if kind == GROUP:
            names: Iterable[str] = self.workload.benchmarks
        elif self.policy.info.profile_kwarg is not None:
            names = [
                name
                for name in self.scenario.arrival_benchmarks(self.system.n_cores)
                if name is not None
            ]
        else:
            return []
        return [
            Experiment.alone_run(name, system=self.system)
            for name in dict.fromkeys(names)
        ]

    # ------------------------------------------------------------------
    # Store identity
    # ------------------------------------------------------------------
    def task_key(self) -> str:
        """Stable content address of this run in the result store.

        For built-in policies at default parameters (and no governor)
        this reproduces the historical ``alone``/``group``/``scenario``
        task keys exactly, so pre-redesign artifacts stay resolvable.
        Non-default policy parameters (third-party knobs, a pinned
        cooperative seed) and a DVFS governor extend the digest
        document and open a fresh key space.
        """
        from repro.orchestration import serialize

        assert isinstance(self.policy, PolicySpec) and self.system is not None
        extra = self.policy.non_default_params()
        governor = None
        if self.governor is not None:
            governor = {
                "name": self.governor.name,
                "params": self.governor.non_default_params(),
            }
        kind = self.kind
        if kind == ALONE:
            return serialize.alone_task_key(self.system, self.workload.name)
        if kind == GROUP:
            if extra or governor:
                params: dict[str, Any] = {
                    "group": self.workload.name,
                    "policy": self.policy_name,
                }
                if extra:
                    params["policy_params"] = extra
                if governor:
                    params["governor"] = governor
                return serialize.task_key("group", self.system, **params)
            return serialize.group_task_key(
                self.system, self.workload.name, self.policy_name
            )
        if extra or governor:
            params = {
                "scenario": serialize.scenario_to_dict(self.scenario),
                "policy": self.policy_name,
            }
            if extra:
                params["policy_params"] = extra
            if governor:
                params["governor"] = governor
            return serialize.task_key("scenario", self.system, **params)
        return serialize.scenario_task_key(
            self.system, self.scenario, self.policy_name
        )

    def store_meta(self) -> dict[str, Any]:
        """The human-facing artifact metadata for this run."""
        assert self.system is not None
        kind = self.kind
        if kind == ALONE:
            meta: dict[str, Any] = {
                "benchmark": self.workload.name,
                "l2": self.system.l2.describe(),
            }
        elif kind == GROUP:
            meta = {
                "group": self.workload.name,
                "policy": self.policy_name,
                "n_cores": self.system.n_cores,
                "l2": self.system.l2.describe(),
            }
        else:
            meta = {
                "scenario": self.scenario.name,
                "policy": self.policy_name,
                "n_cores": self.system.n_cores,
                "l2": self.system.l2.describe(),
                "events": len(self.scenario.events),
            }
        params = self.policy.non_default_params() if kind != ALONE else {}
        if params:
            meta["policy_params"] = params
        if self.governor is not None:
            meta["governor"] = self.governor.name
            governor_params = self.governor.non_default_params()
            if governor_params:
                meta["governor_params"] = governor_params
        return meta

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Lossless JSON-encodable form (the ``--spec`` file entry)."""
        from repro.orchestration.serialize import scenario_to_dict

        return {
            "workload": (
                {"kind": self.workload.kind, "name": self.workload.name}
                if self.workload is not None
                else None
            ),
            "policy": self.policy.to_dict(),
            "system": config_to_dict(self.system),
            "scenario": (
                scenario_to_dict(self.scenario) if self.scenario is not None else None
            ),
            "governor": (
                self.governor.to_dict() if self.governor is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Experiment":
        """Rebuild an experiment from :meth:`to_dict` output."""
        from repro.orchestration.serialize import scenario_from_dict

        workload = data.get("workload")
        scenario = data.get("scenario")
        governor = data.get("governor")
        return cls(
            workload=(
                WorkloadSpec(workload["kind"], workload["name"]) if workload else None
            ),
            policy=PolicySpec.from_dict(data["policy"]),
            system=config_from_dict(data["system"]),
            scenario=scenario_from_dict(scenario) if scenario else None,
            governor=GovernorSpec.from_dict(governor) if governor else None,
        )


# ----------------------------------------------------------------------
# SystemConfig serialisation
# ----------------------------------------------------------------------
def _geometry_to_dict(geometry: CacheGeometry) -> dict[str, int]:
    return {
        "size_bytes": geometry.size_bytes,
        "line_bytes": geometry.line_bytes,
        "ways": geometry.ways,
    }


def config_to_dict(config: SystemConfig) -> dict[str, Any]:
    """JSON-encodable form of a config (init fields only — the derived
    geometry masks/shifts are recomputed on load)."""
    payload: dict[str, Any] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        payload[field.name] = (
            _geometry_to_dict(value) if isinstance(value, CacheGeometry) else value
        )
    return payload


def config_from_dict(data: dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict`."""
    from repro.sim.config import SystemConfig

    kwargs = dict(data)
    kwargs["l1"] = CacheGeometry(**kwargs["l1"])
    kwargs["l2"] = CacheGeometry(**kwargs["l2"])
    return SystemConfig(**kwargs)


def by_group_policy(
    results: "dict[Experiment, Any]",
) -> dict[str, dict[str, Any]]:
    """Pivot a spec-keyed sweep result into the figures' nested
    ``{group: {policy_short_name: run}}`` table shape."""
    table: dict[str, dict[str, Any]] = {}
    for experiment, run in results.items():
        if experiment.kind != GROUP:
            continue
        table.setdefault(experiment.workload.name, {})[
            experiment.policy_name
        ] = run
    return table
