"""Utility-monitoring substrate (UMON, Qureshi & Patt MICRO'06).

The paper's partitioning decisions are driven by per-core utility
monitors: an auxiliary tag directory (ATD) that tracks what each
core's accesses *would* do if the core had the whole LLC to itself,
with one hit counter per LRU stack position.  The Mattson stack
property then yields the core's miss curve — misses as a function of
allocated ways — in a single pass.  Dynamic set sampling keeps the ATD
small, exactly as in UCP.
"""

from repro.monitor.atd import AuxiliaryTagDirectory
from repro.monitor.sampling import SetSampler
from repro.monitor.umon import UtilityMonitor

__all__ = ["AuxiliaryTagDirectory", "SetSampler", "UtilityMonitor"]
