"""Dynamic set sampling for UMON.

Monitoring every set would need an auxiliary tag per LLC tag; UCP
showed that sampling one in every 32 sets loses almost no accuracy.
Sampled sets are chosen by a power-of-two stride so membership testing
is a single mask-and-compare in the simulator's hot path.
"""

from __future__ import annotations


class SetSampler:
    """Selects every ``interval``-th set for monitoring.

    ``interval`` must be a power of two so :meth:`is_sampled` can use a
    mask; ``offset`` staggers which residue class is sampled.
    """

    def __init__(self, num_sets: int, interval: int = 32, offset: int = 0) -> None:
        if interval <= 0 or interval & (interval - 1):
            raise ValueError(f"interval must be a power of two, got {interval}")
        if num_sets % interval:
            raise ValueError(f"{num_sets} sets do not divide into interval {interval}")
        if not 0 <= offset < interval:
            raise ValueError(f"offset {offset} outside 0..{interval - 1}")
        self.num_sets = num_sets
        self.interval = interval
        self.offset = offset
        self.mask = interval - 1

    def is_sampled(self, set_index: int) -> bool:
        """Whether ``set_index`` is one of the monitored sets."""
        return (set_index & self.mask) == self.offset

    @property
    def sampled_count(self) -> int:
        """Number of monitored sets."""
        return self.num_sets // self.interval

    @property
    def scale_factor(self) -> int:
        """Multiplier from sampled counts to whole-cache estimates."""
        return self.interval

    def sampled_sets(self) -> list[int]:
        """The monitored set indices, ascending."""
        return list(range(self.offset, self.num_sets, self.interval))
