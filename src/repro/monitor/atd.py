"""Auxiliary tag directory: per-core LRU tag stacks for sampled sets.

The ATD simulates, for one core, a cache with the LLC's full
associativity dedicated entirely to that core.  Each sampled set keeps
an LRU-ordered list of tags; a hit at stack position ``p`` means the
access would have hit had the core owned at least ``p + 1`` ways
(Mattson's stack-inclusion property), so one counter per position is
all that is needed to recover the full miss curve.
"""

from __future__ import annotations


class AuxiliaryTagDirectory:
    """LRU tag stacks plus stack-position hit counters for one core."""

    def __init__(self, ways: int, sampled_set_indices: list[int]) -> None:
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.ways = ways
        #: map from real set index to this directory's stack
        self._stacks: dict[int, list[int]] = {s: [] for s in sampled_set_indices}
        #: hits seen at each LRU stack position (0 = MRU)
        self.position_hits = [0] * ways
        #: accesses that missed even with full associativity
        self.misses = 0
        #: total sampled accesses
        self.accesses = 0

    def record(self, set_index: int, tag: int) -> int:
        """Record an access; returns the hit position or -1 for a miss.

        The caller has already established that ``set_index`` is
        sampled (so the hot path pays the dictionary lookup only for
        monitored sets).
        """
        stack = self._stacks[set_index]
        self.accesses += 1
        # Membership test first: both scans run at C speed over a
        # stack of at most `ways` tags, and the miss path (common for
        # streaming workloads) never pays exception dispatch.
        if tag not in stack:
            self.misses += 1
            stack.insert(0, tag)
            if len(stack) > self.ways:
                stack.pop()
            return -1
        position = stack.index(tag)
        del stack[position]
        stack.insert(0, tag)
        self.position_hits[position] += 1
        return position

    def decay(self, factor: float = 0.5) -> None:
        """Exponentially age the counters at an epoch boundary.

        UCP periodically ages its counters so that partitioning tracks
        phase changes rather than whole-run averages; a factor of 0
        resets outright.
        """
        if not 0.0 <= factor < 1.0:
            raise ValueError(f"decay factor must be in [0, 1), got {factor}")
        self.position_hits = [int(h * factor) for h in self.position_hits]
        self.misses = int(self.misses * factor)
        self.accesses = int(self.accesses * factor)

    def hits_for_ways(self, ways: int) -> int:
        """Hits this core would see with ``ways`` ways (stack property)."""
        return sum(self.position_hits[:ways])
