"""Per-core utility monitor: ATD plus miss-curve extraction.

``UtilityMonitor`` is what the partitioning policies consume: at each
epoch boundary they read a miss curve — estimated misses as a function
of allocated ways — computed from the ATD's stack-position hit
counters, scaled back up by the sampling factor.
"""

from __future__ import annotations

from repro.monitor.atd import AuxiliaryTagDirectory
from repro.monitor.sampling import SetSampler


class UtilityMonitor:
    """Tracks one core's standalone cache utility.

    Parameters
    ----------
    ways:
        LLC associativity (the maximum allocation to model).
    sampler:
        Which sets are monitored.  The monitor's estimates are scaled
        by the sampling interval so they approximate whole-cache
        counts.
    decay:
        Ageing factor applied to counters at each epoch boundary
        (0 = hard reset each epoch, 0.5 = exponential moving average).
    """

    def __init__(self, ways: int, sampler: SetSampler, decay: float = 0.5) -> None:
        self.ways = ways
        self.sampler = sampler
        self.decay_factor = decay
        self.atd = AuxiliaryTagDirectory(ways, sampler.sampled_sets())
        #: demand accesses observed this epoch (all sets, unscaled)
        self.demand_accesses = 0
        #: demand misses observed this epoch in the real cache
        self.demand_misses = 0

    # ------------------------------------------------------------------
    # Hot-path recording
    # ------------------------------------------------------------------
    def observe(self, set_index: int, tag: int) -> None:
        """Record one demand access (call only for sampled sets)."""
        self.atd.record(set_index, tag)

    def is_sampled(self, set_index: int) -> bool:
        """Fast sampled-set membership test for the simulator."""
        return (set_index & self.sampler.mask) == self.sampler.offset

    # ------------------------------------------------------------------
    # Epoch interface
    # ------------------------------------------------------------------
    def miss_curve(self) -> list[int]:
        """Estimated misses for allocations of 0..ways ways.

        ``curve[w]`` is the number of misses this core would suffer if
        given ``w`` ways.  ``curve[0]`` counts every access as a miss;
        the curve is non-increasing by the stack property.
        """
        scale = self.sampler.scale_factor
        total = self.atd.accesses * scale
        curve = [total]
        hits = 0
        for way in range(self.ways):
            hits += self.atd.position_hits[way]
            curve.append(total - hits * scale)
        return curve

    def end_epoch(self) -> None:
        """Age the counters for the next epoch."""
        self.atd.decay(self.decay_factor)
        self.demand_accesses = 0
        self.demand_misses = 0
