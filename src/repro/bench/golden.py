"""Golden-equivalence matrix: the engine's bit-exactness contract.

The hot-path optimisations (array-backed sets, tuple access paths,
the scheduler fast paths) are only admissible because they change
*nothing* about the simulated machine.  This module pins that down:
a fixed matrix of simulations — every scheme x {2, 4} cores x two LLC
geometries — whose complete :class:`~repro.sim.stats.RunResult`
serialisations are committed as JSON fixtures under
``tests/golden/fixtures/``.

``tests/golden/test_engine_equivalence.py`` recomputes the matrix on
every test run and compares against the fixtures field by field; a
single drifted counter (a hit, a probed way, a nanojoule) fails the
suite.  The committed fixtures were generated from the pre-overhaul
seed engine, so they prove the optimised engine reproduces it exactly.

Regenerate (only when a *deliberate* model change invalidates them)::

    PYTHONPATH=src python -m repro.bench.golden tests/golden/fixtures
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

from repro.cache.geometry import CacheGeometry
from repro.dvfs.governors import GovernorSpec
from repro.experiment import Experiment
from repro.orchestration.serialize import run_result_to_dict
from repro.scenarios.model import (
    Scenario,
    arrival_scenario,
    consolidation_scenario,
    phased_scenario,
)
from repro.sim.config import SystemConfig, scaled_four_core, scaled_two_core
from repro.sim.runner import ALL_POLICIES, ExperimentRunner
from repro.sim.stats import RunResult
from repro.workloads.groups import group_benchmarks

#: fixture payload schema; bump on incompatible layout changes
GOLDEN_SCHEMA = 1


@dataclass(frozen=True)
class GoldenCase:
    """One pinned simulation of the equivalence matrix."""

    name: str
    cores: int
    geometry: str  # "base" or "small"
    policy: str
    group: str
    refs_per_core: int

    def config(self) -> SystemConfig:
        """The exact system configuration of this case."""
        factory = scaled_two_core if self.cores == 2 else scaled_four_core
        config = factory(refs_per_core=self.refs_per_core)
        if self.geometry == "small":
            # Same associativity (the partitioned quantity), half the
            # sets: exercises set-index/tag handling on a second shape.
            small = CacheGeometry(
                config.l2.size_bytes // 2, config.l2.line_bytes, config.l2.ways
            )
            config = dataclasses.replace(config, l2=small)
        return config

    @property
    def filename(self) -> str:
        """Fixture file name for this case."""
        return f"{self.name}.json"


def golden_matrix() -> list[GoldenCase]:
    """Every scheme x {2, 4} cores x {base, small} LLC geometry."""
    cases = []
    for cores, group, refs in ((2, "G2-1", 8_000), (4, "G4-1", 6_000)):
        for geometry in ("base", "small"):
            for policy in ALL_POLICIES:
                cases.append(
                    GoldenCase(
                        name=f"{cores}c_{geometry}_{policy}",
                        cores=cores,
                        geometry=geometry,
                        policy=policy,
                        group=group,
                        refs_per_core=refs,
                    )
                )
    return cases


def run_golden_case(case: GoldenCase, runner: ExperimentRunner) -> RunResult:
    """Simulate one case (the runner caches traces and CPE profiles)."""
    return runner.run(Experiment(case.group, case.policy, case.config()))


# ----------------------------------------------------------------------
# Scenario-timeline fixtures
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioGoldenCase:
    """One pinned time-varying schedule whose full result — per-epoch
    timeline, allocations and energy included — is a committed fixture."""

    name: str
    cores: int
    policy: str
    group: str
    refs_per_core: int
    shape: str  # "depart" | "arrive" | "phase"
    event_cycle: int

    def config(self) -> SystemConfig:
        """The exact system configuration of this case."""
        factory = scaled_two_core if self.cores == 2 else scaled_four_core
        return factory(refs_per_core=self.refs_per_core)

    def scenario(self) -> Scenario:
        """The pinned event schedule of this case."""
        benchmarks = group_benchmarks(self.group)
        if self.shape == "depart":
            return consolidation_scenario(
                benchmarks, [len(benchmarks) - 1], self.event_cycle,
                name=self.name,
            )
        if self.shape == "arrive":
            return arrival_scenario(
                benchmarks, len(benchmarks) - 1, self.event_cycle,
                name=self.name,
            )
        if self.shape == "phase":
            return phased_scenario(
                benchmarks, 0, ["lbm"], [self.event_cycle], name=self.name
            )
        raise ValueError(f"unknown scenario shape {self.shape!r}")

    @property
    def filename(self) -> str:
        """Fixture file name for this case."""
        return f"{self.name}.json"


def scenario_golden_matrix() -> list[ScenarioGoldenCase]:
    """Three pinned schedules: a departure and a phase change on the
    two-core system, a late arrival on the four-core system.

    The event cycles sit inside the measured windows of the matching
    static golden runs (2-core window ≈ 2.82M..3.03M cycles at 8000
    refs; 4-core ≈ 1.28M..1.43M at 6000 refs), so the timelines pin
    the interesting transitions, not just the steady state.
    """
    return [
        ScenarioGoldenCase(
            name="scn_2c_depart_cooperative",
            cores=2, policy="cooperative", group="G2-1",
            refs_per_core=8_000, shape="depart", event_cycle=2_880_000,
        ),
        ScenarioGoldenCase(
            name="scn_4c_arrive_cooperative",
            cores=4, policy="cooperative", group="G4-1",
            refs_per_core=6_000, shape="arrive", event_cycle=1_320_000,
        ),
        ScenarioGoldenCase(
            name="scn_2c_phase_ucp",
            cores=2, policy="ucp", group="G2-1",
            refs_per_core=8_000, shape="phase", event_cycle=2_880_000,
        ),
    ]


def run_scenario_golden_case(
    case: ScenarioGoldenCase, runner: ExperimentRunner
) -> RunResult:
    """Simulate one pinned schedule (trace cache shared via the runner)."""
    return runner.run(
        Experiment.for_scenario(
            case.scenario(), system=case.config(), policy=case.policy
        )
    )


# ----------------------------------------------------------------------
# DVFS fixtures
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DvfsGoldenCase:
    """One pinned DVFS run: per-core V/f trajectory, core energy and
    the frequency/voltage timeline are all part of the fixture."""

    name: str
    cores: int
    policy: str
    group: str
    refs_per_core: int
    governor: str
    qos_slowdown: float

    def config(self) -> SystemConfig:
        """The exact system configuration of this case."""
        factory = scaled_two_core if self.cores == 2 else scaled_four_core
        return factory(refs_per_core=self.refs_per_core)

    def governor_spec(self) -> GovernorSpec:
        """The pinned governor binding of this case."""
        return GovernorSpec(self.governor, qos_slowdown=self.qos_slowdown)

    @property
    def filename(self) -> str:
        """Fixture file name for this case."""
        return f"{self.name}.json"


def dvfs_golden_matrix() -> list[DvfsGoldenCase]:
    """One pinned DVFS run: the coordinated governor over cooperative
    partitioning on the two-core system — the headline configuration
    of the DVFS subsystem, energy integrals and timeline included."""
    return [
        DvfsGoldenCase(
            name="dvfs_2c_coordinated_cooperative",
            cores=2, policy="cooperative", group="G2-1",
            refs_per_core=8_000, governor="coordinated", qos_slowdown=0.2,
        ),
    ]


def run_dvfs_golden_case(
    case: DvfsGoldenCase, runner: ExperimentRunner
) -> RunResult:
    """Simulate one pinned DVFS case (trace cache shared via runner)."""
    return runner.run(
        Experiment(
            case.group,
            case.policy,
            case.config(),
            governor=case.governor_spec(),
        )
    )


# ----------------------------------------------------------------------
# Corpus fixtures
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorpusGoldenCase:
    """One committed corpus scenario whose full result is a fixture.

    This pins two contracts at once: the generator's committed output
    (the scenario is loaded from ``repro/scenarios/corpus/``, so a
    generator drift that changed the committed specs would surface
    here too) and the engine's bit-exact behaviour on a
    generated-storm schedule in the same suite-sized configuration
    the differential harness runs.
    """

    name: str
    scenario_name: str
    policy: str
    governor: str | None

    def config(self) -> SystemConfig:
        """The suite-sized machine for the scenario's core count."""
        from repro.scenarios.generate import corpus_config

        return corpus_config(self.cores)

    @property
    def cores(self) -> int:
        """Core count parsed from the corpus naming scheme."""
        from repro.scenarios.corpus import corpus_scenario

        return corpus_scenario(self.scenario_name).n_cores

    def scenario(self) -> Scenario:
        """The committed corpus schedule of this case."""
        from repro.scenarios.corpus import corpus_scenario

        return corpus_scenario(self.scenario_name).scenario

    def governor_spec(self) -> GovernorSpec | None:
        """The pinned governor binding (None runs at nominal V/f)."""
        return GovernorSpec(self.governor) if self.governor else None

    @property
    def filename(self) -> str:
        """Fixture file name for this case."""
        return f"{self.name}.json"


def corpus_golden_matrix() -> list[CorpusGoldenCase]:
    """One pinned corpus run: the seed-zero two-core storm under
    cooperative partitioning and the coordinated governor — the
    densest event schedule in the quick suite, with arrivals,
    departures, way gating and V/f scaling all in one timeline."""
    return [
        CorpusGoldenCase(
            name="corpus_storm_2c_s000_coordinated",
            scenario_name="storm-2c-s000",
            policy="cooperative",
            governor="coordinated",
        ),
    ]


def run_corpus_golden_case(
    case: CorpusGoldenCase, runner: ExperimentRunner
) -> RunResult:
    """Simulate one pinned corpus case (trace cache shared via runner)."""
    return runner.run(
        Experiment.for_scenario(
            case.scenario(),
            system=case.config(),
            policy=case.policy,
            governor=case.governor_spec(),
        )
    )


def case_payload(case: GoldenCase, result: RunResult) -> dict:
    """JSON-ready fixture payload for one simulated case."""
    return {
        "schema": GOLDEN_SCHEMA,
        "case": dataclasses.asdict(case),
        "result": run_result_to_dict(result),
    }


def diff_payloads(expected: dict, actual: dict, prefix: str = "") -> list[str]:
    """Recursive field-by-field diff; returns mismatch descriptions."""
    mismatches: list[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in expected:
                mismatches.append(f"{path}: unexpected field {actual[key]!r}")
            elif key not in actual:
                mismatches.append(f"{path}: missing (expected {expected[key]!r})")
            else:
                mismatches.extend(diff_payloads(expected[key], actual[key], path))
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            mismatches.append(
                f"{prefix}: length {len(actual)} != expected {len(expected)}"
            )
        else:
            for index, (left, right) in enumerate(zip(expected, actual)):
                mismatches.extend(diff_payloads(left, right, f"{prefix}[{index}]"))
    elif expected != actual:
        mismatches.append(f"{prefix}: {actual!r} != expected {expected!r}")
    return mismatches


def write_fixtures(directory: str | Path, progress=print) -> list[Path]:
    """Generate every fixture into ``directory``; returns written paths.

    Covers both matrices: the static engine-equivalence cases and the
    scenario-timeline cases.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    runner = ExperimentRunner()
    written = []
    matrices = (
        (golden_matrix, run_golden_case),
        (scenario_golden_matrix, run_scenario_golden_case),
        (dvfs_golden_matrix, run_dvfs_golden_case),
        (corpus_golden_matrix, run_corpus_golden_case),
    )
    for matrix, run_case in matrices:
        for case in matrix():
            result = run_case(case, runner)
            path = directory / case.filename
            path.write_text(
                json.dumps(case_payload(case, result), indent=2, sort_keys=True)
                + "\n"
            )
            written.append(path)
            if progress is not None:
                progress(f"wrote {path}")
    return written


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    import sys

    target = sys.argv[1] if len(sys.argv) > 1 else "tests/golden/fixtures"
    write_fixtures(target)
