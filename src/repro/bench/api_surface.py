"""Public-API surface snapshot: a committed contract against drift.

The redesign around :class:`~repro.experiment.Experiment` made the
public surface small and deliberate; this module keeps it that way.
:func:`compute_surface` flattens the API into a plain JSON document —
``repro.__all__``, the spec/builder/runner signatures and the policy
registry (names, display names, typed parameters) — and the committed
snapshot at ``tests/api_surface.json`` is compared against it by the
test suite and the CI ``api-surface`` job, so any *accidental* change
to the surface fails loudly.

Deliberate changes regenerate the snapshot::

    PYTHONPATH=src python -m repro.bench.api_surface

and ``--check`` compares without writing (the CI mode)::

    PYTHONPATH=src python -m repro.bench.api_surface --check

Only names, parameter lists, defaults and declared param types are
recorded — not docstrings or behaviour — so the snapshot is stable
across Python versions while still catching signature drift.
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from pathlib import Path
from typing import Any

#: default snapshot location, relative to the repository root
SURFACE_PATH = Path("tests") / "api_surface.json"

#: snapshot layout version; bump on incompatible format changes
#: (2: added the DVFS governor registry, GovernorSpec and the
#: TimelineSample field list; 3: added the scenario generator, the
#: committed-corpus name grid and the differential-suite entry points;
#: 4: added the orchestration layer — pool backends, the wire types,
#: the result store, the sweep executor and the serve daemon;
#: 5: added the static-analysis layer — the rule registry with
#: categories/severities/fixability and the ``repro check`` entry
#: points;
#: 6: added the observability layer — the metric registry with
#: kinds/units, the trace recorder protocol, the enable switches and
#: their environment variables)
SURFACE_SCHEMA = 6


def _signature_of(function: Any) -> list[dict[str, Any]]:
    """Flatten a callable's parameters into JSON-stable records."""
    parameters = []
    for parameter in inspect.signature(function).parameters.values():
        record: dict[str, Any] = {"name": parameter.name}
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            record["variadic"] = True
        if parameter.kind is inspect.Parameter.KEYWORD_ONLY:
            record["keyword_only"] = True
        if parameter.default is not inspect.Parameter.empty:
            record["default"] = repr(parameter.default)
        parameters.append(record)
    return parameters


def _public_methods(cls: type) -> dict[str, list[dict[str, Any]]]:
    """Signatures of a class's public methods (dunders excluded)."""
    methods: dict[str, list[dict[str, Any]]] = {}
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if isinstance(member, (classmethod, staticmethod)):
            member = member.__func__
        elif isinstance(member, property):
            methods[name] = [{"name": "property"}]
            continue
        if callable(member):
            methods[name] = _signature_of(member)
    return methods


def _params_surface(info: Any) -> dict[str, Any]:
    """Declared-parameter snapshot of one registry entry (shared by
    the policy and governor registries — they declare params the same
    way)."""
    return {
        field.name: {
            "type": str(field.type),
            "default": repr(info.param_defaults().get(field.name)),
        }
        for field in dataclasses.fields(info.params_type)
    }


def _registry_surface() -> dict[str, Any]:
    from repro.partitioning.registry import policy_info, registered_policies

    policies: dict[str, Any] = {}
    for name in sorted(registered_policies()):
        info = policy_info(name)
        policies[name] = {
            "display_name": info.display_name,
            "needs_monitors": info.needs_monitors,
            "profile_kwarg": info.profile_kwarg,
            "params": _params_surface(info),
        }
    return policies


def _governor_surface() -> dict[str, Any]:
    from repro.dvfs.governors import governor_info, registered_governors

    governors: dict[str, Any] = {}
    for name in sorted(registered_governors()):
        info = governor_info(name)
        governors[name] = {
            "display_name": info.display_name,
            "params": _params_surface(info),
        }
    return governors


def _scenarios_surface() -> dict[str, Any]:
    """The generator, corpus and differential-suite entry points."""
    from repro.bench.differential import (
        SUITES,
        run_suite,
        suite_governors,
        suite_policies,
    )
    from repro.scenarios.corpus import load_corpus
    from repro.scenarios.generate import (
        CORPUS_SCHEMA,
        SCENARIO_SHAPES,
        generate_scenario,
        pinned_corpus_names,
    )

    return {
        "shapes": list(SCENARIO_SHAPES),
        "generate_scenario": _signature_of(generate_scenario),
        "corpus": {
            "schema": CORPUS_SCHEMA,
            "names": list(pinned_corpus_names()),
        },
        "load_corpus": _signature_of(load_corpus),
        "suites": {
            suite: {
                "policies": list(suite_policies(suite)),
                "governors": list(suite_governors(suite)),
            }
            for suite in SUITES
        },
        "run_suite": _signature_of(run_suite),
    }


def _orchestration_surface() -> dict[str, Any]:
    """The pool layer, store, executor and serve-daemon entry points."""
    import repro.orchestration as orchestration
    from repro.orchestration.executor import SweepExecutor
    from repro.orchestration.pools import (
        POOL_NAMES,
        WIRE_SCHEMA,
        Pool,
        PoolResult,
        PoolTask,
        remote_main,
        resolve_pool,
        resolve_pool_name,
    )
    from repro.orchestration.serve import SweepServer
    from repro.orchestration.store import ResultStore

    return {
        "all": sorted(orchestration.__all__),
        "pool_names": list(POOL_NAMES),
        "wire_schema": WIRE_SCHEMA,
        "pool": _public_methods(Pool),
        "pool_task": {
            "fields": [field.name for field in dataclasses.fields(PoolTask)],
        },
        "pool_result": {
            "fields": [field.name for field in dataclasses.fields(PoolResult)],
        },
        "store": _public_methods(ResultStore),
        "executor": _public_methods(SweepExecutor),
        "server": _public_methods(SweepServer),
        "resolve_pool": _signature_of(resolve_pool),
        "resolve_pool_name": _signature_of(resolve_pool_name),
        "remote_main": _signature_of(remote_main),
    }


def _analysis_surface() -> dict[str, Any]:
    """The rule registry and the ``repro check`` entry points."""
    from repro.analysis import check_file, check_paths, register_rule
    from repro.analysis.baseline import BASELINE_SCHEMA
    from repro.analysis.cli import run_check
    from repro.analysis.registry import (
        CATEGORIES,
        SEVERITIES,
        registered_rules,
        rule_info,
    )

    rules: dict[str, Any] = {}
    for name in registered_rules():
        info = rule_info(name)
        rules[name] = {
            "category": info.category,
            "default_severity": info.default_severity,
            "fixable": info.fixable,
        }
    return {
        "categories": list(CATEGORIES),
        "severities": list(SEVERITIES),
        "baseline_schema": BASELINE_SCHEMA,
        "rules": rules,
        "register_rule": _signature_of(register_rule),
        "check_file": _signature_of(check_file),
        "check_paths": _signature_of(check_paths),
        "run_check": _signature_of(run_check),
    }


def _obs_surface() -> dict[str, Any]:
    """The metric registry, trace recorder and enable switches."""
    import repro.obs as obs
    from repro.obs.log import QUIET_ENV, progress
    from repro.obs.metrics import (
        METRICS_ENV,
        register_metric,
        registered_metrics,
        render_prometheus,
    )
    from repro.obs.trace import (
        TRACE_ARTIFACT_SCHEMA,
        TRACE_ENV,
        NullRecorder,
        TraceRecorder,
        trace_key,
    )

    metrics: dict[str, Any] = {}
    for info in registered_metrics():
        metrics[info.name] = {"kind": info.kind, "unit": info.unit}
    return {
        "all": sorted(obs.__all__),
        "env": {
            "metrics": METRICS_ENV,
            "trace": TRACE_ENV,
            "quiet": QUIET_ENV,
        },
        "trace_artifact_schema": TRACE_ARTIFACT_SCHEMA,
        "metrics": metrics,
        "register_metric": _signature_of(register_metric),
        "render_prometheus": _signature_of(render_prometheus),
        "null_recorder": _public_methods(NullRecorder),
        "trace_recorder": _public_methods(TraceRecorder),
        "trace_key": _signature_of(trace_key),
        "progress": _signature_of(progress),
    }


def compute_surface() -> dict[str, Any]:
    """The current public-API surface as a JSON-stable document."""
    import repro
    from repro.dvfs.governors import GovernorSpec, register_governor
    from repro.experiment import Experiment, WorkloadSpec
    from repro.partitioning.registry import PolicySpec, register_policy
    from repro.scenarios.timeline import TimelineSample
    from repro.sim.runner import ExperimentRunner

    return {
        "schema": SURFACE_SCHEMA,
        "all": sorted(repro.__all__),
        "experiment": {
            "fields": [field.name for field in dataclasses.fields(Experiment)],
            "methods": _public_methods(Experiment),
        },
        "workload_spec": {
            "fields": [field.name for field in dataclasses.fields(WorkloadSpec)],
            "methods": _public_methods(WorkloadSpec),
        },
        "policy_spec": {
            "fields": [field.name for field in dataclasses.fields(PolicySpec)],
            "methods": _public_methods(PolicySpec),
        },
        "governor_spec": {
            "fields": [field.name for field in dataclasses.fields(GovernorSpec)],
            "methods": _public_methods(GovernorSpec),
        },
        "timeline_sample": {
            "fields": [
                field.name for field in dataclasses.fields(TimelineSample)
            ],
        },
        "runner": _public_methods(ExperimentRunner),
        "register_policy": _signature_of(register_policy),
        "register_governor": _signature_of(register_governor),
        "policies": _registry_surface(),
        "governors": _governor_surface(),
        "scenarios": _scenarios_surface(),
        "orchestration": _orchestration_surface(),
        "analysis": _analysis_surface(),
        "obs": _obs_surface(),
    }


def render_surface() -> str:
    """The snapshot file contents for the current surface."""
    return json.dumps(compute_surface(), indent=2, sort_keys=True) + "\n"


def diff_surface(committed: dict[str, Any], current: dict[str, Any]) -> list[str]:
    """Human-readable drift between snapshots (empty = no drift)."""
    from repro.bench.golden import diff_payloads

    return diff_payloads(committed, current)


def main(argv: list[str] | None = None) -> int:
    """Regenerate (default) or ``--check`` the committed snapshot."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.api_surface",
        description="Regenerate or verify the committed public-API snapshot.",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed snapshot and exit non-zero "
             "on drift instead of rewriting it",
    )
    parser.add_argument(
        "--path", default=str(SURFACE_PATH), metavar="FILE",
        help=f"snapshot location (default: {SURFACE_PATH})",
    )
    options = parser.parse_args(argv)
    path = Path(options.path)
    if options.check:
        if not path.exists():
            print(f"missing snapshot {path}; regenerate it first")
            return 1
        committed = json.loads(path.read_text())
        drift = diff_surface(committed, compute_surface())
        if drift:
            print(f"public-API surface drifted from {path}:")
            for line in drift:
                print(f"  {line}")
            print(
                "intentional? regenerate with: "
                "PYTHONPATH=src python -m repro.bench.api_surface"
            )
            return 1
        print(f"public-API surface matches {path}")
        return 0
    path.write_text(render_surface())
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - entry point
    raise SystemExit(main())
