"""Performance measurement for the simulation engine.

Two closely related facilities live here:

* :mod:`repro.bench.harness` — the throughput harness behind
  ``repro bench``: it times the simulator on a fixed workload matrix,
  reports references/second, writes ``BENCH_sim_throughput.json``
  and can fail on regressions against a committed baseline;
* :mod:`repro.bench.golden` — the golden-equivalence matrix: a fixed
  set of (scheme x cores x geometry) simulations whose bit-exact
  :class:`~repro.sim.stats.RunResult` serialisations are committed as
  fixtures, so any engine change that alters a single counter is
  caught by the test suite.

Both use only the public simulation API, so they measure exactly what
users of :class:`~repro.sim.simulator.CMPSimulator` experience.
"""

from repro.bench.harness import (
    BENCH_FILENAME,
    BenchCase,
    bench_matrix,
    compare_to_baseline,
    run_benchmarks,
)

__all__ = [
    "BENCH_FILENAME",
    "BenchCase",
    "bench_matrix",
    "compare_to_baseline",
    "run_benchmarks",
]
