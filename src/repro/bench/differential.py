"""Differential invariant harness over the scenario corpus.

The scenario engine times five policies against four governor settings
over arbitrary schedules — a space far too large for hand-written
expectations.  This module checks *relations* instead of values, at
three depths:

* :func:`check_run` — per-run engine invariants readable off a
  store-backed :class:`~repro.sim.stats.RunResult`: powered ways stay
  inside the LLC geometry, the timeline boundary clock and every
  cumulative energy series are monotone, departed cores stay
  frequency-gated, and DVFS fields appear exactly when a governor ran.
* :func:`check_cross` — cross-policy / cross-governor sanity over the
  runs of one scenario: ``cooperative`` never leaks more than
  ``unmanaged``; a default ``fixed`` governor is bit-identical to the
  pre-DVFS machine on the LLC side; ``coordinated`` honours its QoS
  budget against the ungoverned run and beats fixed-nominal on total
  energy.
* :func:`check_live` — invariants that need the simulator itself, not
  just its result: the incremental occupancy counters against a
  brute-force recount of the cache arrays.

:func:`run_suite` drives the committed corpus through the existing
store-backed run path (``ExperimentRunner``), applies every check, and
renders a summary table / JSON report; ``repro scenario --suite`` is
the CLI face.  Same checks, one graded knob: the ``quick`` suite is
the CI smoke, ``full`` is the pre-tentpole regression net.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.dvfs.governors import GovernorSpec
from repro.experiment import Experiment
from repro.scenarios.corpus import CorpusEntry, load_corpus
from repro.scenarios.generate import CORPUS_SHAPES
from repro.sim.config import SystemConfig, scaled_four_core, scaled_two_core
from repro.sim.runner import ALL_POLICIES, ExperimentRunner
from repro.sim.stats import RunResult

__all__ = [
    "Violation",
    "SuiteReport",
    "SUITES",
    "GATING_POLICIES",
    "check_run",
    "check_cross",
    "check_live",
    "check_simulator",
    "governor_label",
    "governor_from_label",
    "suite_entries",
    "suite_policies",
    "suite_governors",
    "suite_config",
    "run_suite",
    "render_report",
]

#: suite grades, mildest first
SUITES = ("quick", "full")

#: policies that flush-and-gate LLC ways when a core departs
GATING_POLICIES = ("cooperative", "cpe")

#: absolute/relative slack for float accumulator comparisons
FLOAT_SLACK = 1e-9

#: DVFS timing-model tolerance for QoS compliance checks.  On static
#: workloads the analytic slowdown model is within ~2% (the
#: ``bench_dvfs_qos_energy`` constant); under dynamic schedules the
#: controller reacts on *stale* epoch telemetry — an arrival or phase
#: change shifts a core's miss mix an epoch before the governor can
#: respond — which adds a few percent of honest model error.  The
#: check still catches gross breakage (an unconstrained governor
#: slows memory-bound cores 30%+).
QOS_TOLERANCE = 0.05

#: slack for cross-governor total-energy comparisons: a slowed core
#: stretches wall time, and the extra LLC leakage of the longer window
#: can nibble at the V² core savings on short suite-sized runs
ENERGY_TOLERANCE = 0.02

#: suite refs per core, sized so corpus horizons land inside the run
DEFAULT_SUITE_REFS = {2: 6_000, 4: 5_000}

#: suite epoch length — several epochs inside even the shortest run
DEFAULT_SUITE_EPOCH = 60_000

_QUICK_SEED = 0


# ----------------------------------------------------------------------
# Violations
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant breach: which check, on which run, and how."""

    check: str
    subject: str
    detail: str

    def to_dict(self) -> dict[str, str]:
        return {
            "check": self.check,
            "subject": self.subject,
            "detail": self.detail,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.check}] {self.subject}: {self.detail}"


# ----------------------------------------------------------------------
# Governor labels (the suite's spelling of "no governor")
# ----------------------------------------------------------------------
def governor_label(governor: GovernorSpec | str | None) -> str:
    """The suite label of a governor setting (``"none"`` = no DVFS)."""
    if governor is None:
        return "none"
    if isinstance(governor, str):
        return governor
    return governor.name


def governor_from_label(label: str) -> GovernorSpec | None:
    """Inverse of :func:`governor_label` with default parameters."""
    if label == "none":
        return None
    return GovernorSpec(label)


# ----------------------------------------------------------------------
# Per-run invariants (store-backed results are enough)
# ----------------------------------------------------------------------
def check_run(experiment: Experiment, run: RunResult) -> list[Violation]:
    """Engine invariants on one scenario run's result + timeline."""
    subject = _subject(experiment)
    ways = experiment.system.l2.ways
    n_cores = experiment.system.n_cores
    governed = experiment.governor is not None
    violations: list[Violation] = []

    def fail(check: str, detail: str) -> None:
        violations.append(Violation(check, subject, detail))

    # -- geometry bounds ----------------------------------------------
    for index, sample in enumerate(run.timeline):
        if not 0 <= sample.powered_ways <= ways:
            fail(
                "powered-ways-bounds",
                f"sample #{index} at cycle {sample.cycle} powers "
                f"{sample.powered_ways} ways outside [0, {ways}]",
            )
        if len(sample.allocations) != n_cores or any(
            not 0 <= allocation <= ways for allocation in sample.allocations
        ):
            fail(
                "allocation-bounds",
                f"sample #{index} allocations {sample.allocations} leave "
                f"[0, {ways}]^{n_cores}",
            )
        if any(not 0 <= core < n_cores for core in sample.active_cores):
            fail(
                "active-cores-bounds",
                f"sample #{index} active cores {sample.active_cores} "
                f"name slots outside the {n_cores}-core machine",
            )

    # -- monotone boundary clock --------------------------------------
    cycles = [sample.cycle for sample in run.timeline]
    for a, b in zip(cycles, cycles[1:]):
        if b < a:
            fail("monotone-clock", f"timeline clock steps back {a} -> {b}")
            break
    if cycles and cycles[-1] > run.end_cycle:
        fail(
            "monotone-clock",
            f"last sample at {cycles[-1]} outlives end_cycle {run.end_cycle}",
        )

    # -- cumulative energies are monotone non-decreasing --------------
    for check, series in (
        ("monotone-static-energy", [s.static_energy_nj for s in run.timeline]),
        (
            "monotone-dynamic-energy",
            [s.dynamic_energy_nj for s in run.timeline],
        ),
        ("monotone-core-energy", [s.core_energy_nj for s in run.timeline]),
    ):
        for a, b in zip(series, series[1:]):
            if b < a - FLOAT_SLACK * max(abs(a), 1.0):
                fail(check, f"cumulative series decreases {a} -> {b}")
                break
    for field in ("static_energy_nj", "dynamic_energy_nj", "core_energy_nj"):
        if getattr(run, field) < 0.0:
            fail("nonnegative-energy", f"{field} = {getattr(run, field)}")

    # -- departures gate leakage for the gating policies --------------
    # (the result's ``policy`` is the display name; the experiment
    # carries the registry name the tuple uses)
    if experiment.policy_name in GATING_POLICIES:
        for index in range(1, len(run.timeline)):
            sample = run.timeline[index]
            if not sample.events or not all(
                event.startswith("depart:") for event in sample.events
            ):
                continue
            previous = run.timeline[index - 1]
            if sample.powered_ways > previous.powered_ways:
                fail(
                    "depart-gating",
                    f"departure at cycle {sample.cycle} raises powered "
                    f"ways {previous.powered_ways} -> {sample.powered_ways}",
                )

    # -- DVFS fields appear exactly when a governor ran ---------------
    if governed:
        expected = governor_label(experiment.governor)
        if run.governor != expected:
            fail(
                "dvfs-fields",
                f"result records governor {run.governor!r}, spec says "
                f"{expected!r}",
            )
        for index, sample in enumerate(run.timeline):
            if len(sample.frequencies_mhz) != n_cores or len(
                sample.voltages_mv
            ) != n_cores:
                fail(
                    "dvfs-fields",
                    f"sample #{index} misses per-slot V/f for the "
                    f"{n_cores}-core machine",
                )
                break
        violations.extend(_check_departed_frequencies(subject, run))
    else:
        if run.governor is not None:
            fail("dvfs-fields", f"ungoverned run records {run.governor!r}")
        if run.core_energy_nj != 0.0:
            fail(
                "gated-core-energy",
                f"ungoverned run charges {run.core_energy_nj} nJ of core "
                f"energy",
            )
        for index, sample in enumerate(run.timeline):
            if sample.frequencies_mhz or sample.voltages_mv or (
                sample.core_energy_nj != 0.0
            ):
                fail(
                    "dvfs-fields",
                    f"ungoverned sample #{index} carries DVFS fields",
                )
                break
    return violations


def _check_departed_frequencies(
    subject: str, run: RunResult
) -> list[Violation]:
    """After ``depart:coreN``, slot N must stay at 0 MHz (gated)."""
    violations: list[Violation] = []
    departed: dict[int, int] = {}
    for index, sample in enumerate(run.timeline):
        for event in sample.events:
            if event.startswith("depart:core"):
                try:
                    core = int(event[len("depart:core"):])
                except ValueError:  # pragma: no cover - label contract
                    continue
                departed.setdefault(core, index)
    for core, since in departed.items():
        for sample in run.timeline[since + 1:]:
            if core < len(sample.frequencies_mhz) and (
                sample.frequencies_mhz[core] != 0
            ):
                violations.append(
                    Violation(
                        "departed-frequency",
                        subject,
                        f"core {core} departed but still clocks "
                        f"{sample.frequencies_mhz[core]} MHz at cycle "
                        f"{sample.cycle}",
                    )
                )
                break
    return violations


# ----------------------------------------------------------------------
# Cross-run sanity (one scenario, many policies × governors)
# ----------------------------------------------------------------------
def check_cross(
    scenario_name: str,
    runs: Mapping[tuple[str, str], RunResult],
    governors: Mapping[str, GovernorSpec | None] | None = None,
    scenario=None,
) -> list[Violation]:
    """Differential checks over one scenario's (policy, governor) grid.

    ``runs`` maps ``(policy, governor_label)`` to the run; ``governors``
    maps each label to the spec that produced it (defaults rebuild the
    spec from the label, so parameterised suites should pass it).
    ``scenario`` (when given) scopes the QoS check to the cores whose
    measured window is actually comparable across governors — resident
    from cycle 0, never departing.  A core that departs at a fixed
    wall-clock cycle executes *less* work under a slowed clock, and a
    late arrival's window starts wherever the stretched schedule puts
    it, so their cycle ratios measure the schedule, not the governor.
    """
    if governors is None:
        governors = {
            label: governor_from_label(label)
            for label in {key[1] for key in runs}
        }
    violations: list[Violation] = []
    policies = sorted({key[0] for key in runs})
    labels = sorted({key[1] for key in runs})

    # Cooperative (and every other scheme) never leaks more than the
    # unmanaged machine: powered ways are a subset of "all ways, always".
    for label in labels:
        baseline = runs.get(("unmanaged", label))
        if baseline is None or baseline.window_cycles == 0:
            continue
        ceiling = baseline.static_power_nw * (1.0 + FLOAT_SLACK)
        for policy in policies:
            run = runs.get((policy, label))
            if run is None or run.window_cycles == 0:
                continue
            if run.static_power_nw > ceiling:
                violations.append(
                    Violation(
                        "static-power-vs-unmanaged",
                        f"{scenario_name}/{policy}/{label}",
                        f"static power {run.static_power_nw:.3f} nW beats "
                        f"unmanaged's {baseline.static_power_nw:.3f} nW",
                    )
                )

    for policy in policies:
        ungoverned = runs.get((policy, "none"))

        # A default `fixed` governor is the legacy machine spelled
        # explicitly: the whole LLC side must be bit-identical.
        fixed = runs.get((policy, "fixed"))
        fixed_spec = governors.get("fixed")
        if (
            ungoverned is not None
            and fixed is not None
            and (fixed_spec is None or not fixed_spec.non_default_params())
        ):
            violations.extend(
                _check_fixed_identity(
                    f"{scenario_name}/{policy}", ungoverned, fixed
                )
            )

        # The coordinated governor honours its QoS budget against the
        # same schedule at nominal frequency...
        coordinated = runs.get((policy, "coordinated"))
        spec = governors.get("coordinated")
        if coordinated is not None and ungoverned is not None:
            budget = 0.10
            if spec is not None:
                budget = spec.bound_params().get("qos_slowdown", budget)
            eligible = _qos_eligible_cores(
                scenario, len(coordinated.cores)
            )
            for core, (governed_core, reference) in enumerate(
                zip(coordinated.cores, ungoverned.cores)
            ):
                if core not in eligible or reference.cycles == 0:
                    continue
                slowdown = governed_core.cycles / reference.cycles
                if slowdown > 1.0 + budget + QOS_TOLERANCE:
                    violations.append(
                        Violation(
                            "coordinated-qos",
                            f"{scenario_name}/{policy}/coordinated",
                            f"core {core} slowdown {slowdown:.4f} breaks "
                            f"budget 1+{budget}+{QOS_TOLERANCE}",
                        )
                    )

        # ...and never spends more total (LLC + core) energy than the
        # fixed-nominal machine it is allowed to slow down.
        if coordinated is not None and fixed is not None:
            ceiling = fixed.total_energy_nj * (1.0 + ENERGY_TOLERANCE)
            if coordinated.total_energy_nj > ceiling:
                violations.append(
                    Violation(
                        "coordinated-energy",
                        f"{scenario_name}/{policy}/coordinated",
                        f"total energy {coordinated.total_energy_nj:.1f} nJ "
                        f"exceeds fixed-nominal "
                        f"{fixed.total_energy_nj:.1f} nJ (+{ENERGY_TOLERANCE:.0%})",
                    )
                )
    return violations


def _qos_eligible_cores(scenario, n_cores: int) -> set[int]:
    """Cores whose cycle ratio is a fair QoS measure (see check_cross)."""
    if scenario is None:
        return set(range(n_cores))
    departed = {
        event.core for event in scenario.events if event.kind == "depart"
    }
    eligible = set()
    for core in range(n_cores):
        arrival = scenario.arrival_of(core)
        if arrival is not None and arrival.at_cycle == 0 and (
            core not in departed
        ):
            eligible.add(core)
    return eligible


_IDENTICAL_FIELDS = (
    "end_cycle",
    "dynamic_energy_nj",
    "static_energy_nj",
    "average_active_ways",
    "average_ways_probed",
    "memory_reads",
    "memory_writebacks",
    "window_instructions",
    "window_cycles",
)


def _check_fixed_identity(
    subject: str, ungoverned: RunResult, fixed: RunResult
) -> list[Violation]:
    violations: list[Violation] = []

    def fail(detail: str) -> None:
        violations.append(Violation("fixed-nominal-identity", subject, detail))

    for field in _IDENTICAL_FIELDS:
        a, b = getattr(ungoverned, field), getattr(fixed, field)
        if a != b:
            fail(f"{field} diverges: none={a!r} fixed={b!r}")
    if ungoverned.cores != fixed.cores:
        fail("per-core results diverge between none and default fixed")
    if len(ungoverned.timeline) != len(fixed.timeline):
        fail(
            f"timeline lengths diverge: none={len(ungoverned.timeline)} "
            f"fixed={len(fixed.timeline)}"
        )
        return violations
    for index, (a, b) in enumerate(
        zip(ungoverned.timeline, fixed.timeline)
    ):
        if (
            a.cycle != b.cycle
            or a.active_cores != b.active_cores
            or a.allocations != b.allocations
            or a.powered_ways != b.powered_ways
            or a.static_energy_nj != b.static_energy_nj
            or a.dynamic_energy_nj != b.dynamic_energy_nj
            or a.events != b.events
        ):
            fail(f"timeline sample #{index} diverges on the LLC side")
            break
    return violations


# ----------------------------------------------------------------------
# Live checks (need the simulator, not just the result)
# ----------------------------------------------------------------------
def check_simulator(subject: str, simulator, run: RunResult) -> list[Violation]:
    """Invariants over live simulator state after a completed run."""
    violations: list[Violation] = []
    config = simulator.config
    ways = config.l2.ways

    active = simulator.policy.active_ways()
    if not 0 <= active <= ways:
        violations.append(
            Violation(
                "powered-ways-bounds",
                subject,
                f"policy reports {active} active ways outside [0, {ways}]",
            )
        )

    # Incremental occupancy counters == brute-force recount of the
    # cache arrays (the partition bookkeeping drifted iff these differ).
    cache = simulator.cache
    recount = [0] * config.n_cores
    for cset in cache.sets:
        for way in range(cset.ways):
            owner = cset.owner[way]
            if cset.tags[way] != -1 and 0 <= owner < config.n_cores:
                recount[owner] += 1
    incremental = cache.occupancy_by_core(config.n_cores)
    if incremental != recount:
        violations.append(
            Violation(
                "occupancy-recount",
                subject,
                f"incremental occupancy {incremental} != recount {recount}",
            )
        )
    return violations


def check_live(
    experiment: Experiment,
    trace_for: Callable[[str, SystemConfig], Any] | None = None,
) -> tuple[RunResult, list[Violation]]:
    """Simulate ``experiment`` directly and run every live + per-run
    check.  Profile-fed policies (``cpe``) need the runner's alone-run
    plumbing, so live checks stick to the profile-free ones.
    """
    from repro.sim.simulator import CMPSimulator

    if experiment.scenario is None:
        raise ValueError("check_live needs a scenario experiment")
    if experiment.policy.info.profile_kwarg is not None:
        raise ValueError(
            f"live checks do not support profile-fed policy "
            f"{experiment.policy_name!r}"
        )
    if trace_for is None:
        trace_for = ExperimentRunner().trace_for
    config = experiment.system
    simulator = CMPSimulator.for_scenario(
        config,
        experiment.scenario,
        experiment.policy,
        lambda benchmark: trace_for(benchmark, config),
        collect_timeline=True,
        governor=experiment.governor,
    )
    run = simulator.run()
    violations = check_run(experiment, run)
    violations.extend(check_simulator(_subject(experiment), simulator, run))
    return run, violations


def _subject(experiment: Experiment) -> str:
    scenario = experiment.scenario.name if experiment.scenario else "?"
    return (
        f"{scenario}/{experiment.policy_name}/"
        f"{governor_label(experiment.governor)}"
    )


# ----------------------------------------------------------------------
# Suite selection
# ----------------------------------------------------------------------
def suite_entries(
    suite: str = "quick",
    *,
    corpus: Mapping[str, CorpusEntry] | None = None,
    name_filter: str | None = None,
) -> list[CorpusEntry]:
    """The corpus scenarios a suite grade runs, in name order.

    ``quick`` takes the seed-0 scenario of every (shape, core count)
    cell — 10 scenarios; ``full`` takes the whole corpus.  An optional
    substring ``name_filter`` narrows either.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; choose from {SUITES}")
    if corpus is None:
        corpus = load_corpus()
    if suite == "quick":
        wanted = [
            f"{shape}-{cores}c-s{_QUICK_SEED:03d}"
            for shape in CORPUS_SHAPES
            for cores in (2, 4)
        ]
        missing = [name for name in wanted if name not in corpus]
        if missing:
            raise ValueError(
                f"quick suite scenarios missing from the corpus: "
                f"{', '.join(missing)}"
            )
        entries = [corpus[name] for name in sorted(wanted)]
    else:
        entries = [corpus[name] for name in sorted(corpus)]
    if name_filter:
        entries = [entry for entry in entries if name_filter in entry.name]
        if not entries:
            raise ValueError(
                f"name filter {name_filter!r} matches no suite scenario"
            )
    return entries


def suite_policies(suite: str = "quick") -> tuple[str, ...]:
    """Default policy selection per suite grade."""
    if suite == "quick":
        return ("unmanaged", "cooperative")
    return tuple(ALL_POLICIES)


def suite_governors(suite: str = "quick") -> tuple[str, ...]:
    """Default governor-label selection per suite grade."""
    if suite == "quick":
        return ("none", "coordinated")
    return ("none", "fixed", "ondemand", "coordinated")


def suite_config(
    entry: CorpusEntry, refs_per_core: int | None = None
) -> SystemConfig:
    """The machine a suite run times ``entry`` on (suite-sized refs)."""
    base = scaled_two_core if entry.n_cores == 2 else scaled_four_core
    refs = refs_per_core or DEFAULT_SUITE_REFS[entry.n_cores]
    config = base(refs_per_core=refs)
    return dataclasses.replace(config, epoch_cycles=DEFAULT_SUITE_EPOCH)


# ----------------------------------------------------------------------
# The suite runner
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SuiteReport:
    """Outcome of one differential suite run."""

    suite: str
    policies: tuple[str, ...]
    governors: tuple[str, ...]
    rows: list[dict[str, Any]]
    violations: list[Violation]
    counts: dict[str, int]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready report (the CI artifact shape)."""
        return {
            "suite": self.suite,
            "policies": list(self.policies),
            "governors": list(self.governors),
            "counts": dict(self.counts),
            "ok": self.ok,
            "rows": [dict(row) for row in self.rows],
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self) -> str:
        return render_report(self)


def run_suite(
    suite: str = "quick",
    *,
    policies: Sequence[str] | None = None,
    governors: Sequence[GovernorSpec | str | None] | None = None,
    name_filter: str | None = None,
    refs_per_core: int | None = None,
    runner: ExperimentRunner | None = None,
    corpus: Mapping[str, CorpusEntry] | None = None,
    deep: int = 2,
    progress: Callable[[str], None] | None = None,
) -> SuiteReport:
    """Run the differential suite and collect every violation.

    Runs every selected corpus scenario under every (policy ×
    governor) combination through the store-backed run path, applies
    the per-run and cross-run checks, and re-simulates ``deep`` combos
    live for the checks that need simulator state (occupancy recount).
    """
    entries = suite_entries(suite, corpus=corpus, name_filter=name_filter)
    policies = tuple(policies) if policies is not None else suite_policies(suite)
    governor_specs: dict[str, GovernorSpec | None] = {}
    for governor in (
        governors if governors is not None else suite_governors(suite)
    ):
        spec = (
            governor_from_label(governor)
            if governor is None or isinstance(governor, str)
            else governor
        )
        governor_specs[governor_label(spec)] = spec
    if runner is None:
        runner = ExperimentRunner()

    experiments: dict[tuple[str, str, str], Experiment] = {}
    for entry in entries:
        config = suite_config(entry, refs_per_core)
        for policy in policies:
            for label, spec in governor_specs.items():
                experiments[(entry.name, policy, label)] = (
                    Experiment.for_scenario(
                        entry.scenario,
                        system=config,
                        policy=policy,
                        governor=spec,
                    )
                )

    say = progress or (lambda message: None)
    say(
        f"suite {suite}: {len(entries)} scenarios x {len(policies)} "
        f"policies x {len(governor_specs)} governors = "
        f"{len(experiments)} runs"
    )
    runner.prefetch(experiments.values())

    rows: list[dict[str, Any]] = []
    violations: list[Violation] = []
    counts = {
        "scenarios": len(entries),
        "runs": len(experiments),
        "per_run_checks": 0,
        "cross_run_checks": 0,
        "live_checks": 0,
    }
    results: dict[tuple[str, str, str], RunResult] = {}
    for index, ((name, policy, label), experiment) in enumerate(
        experiments.items()
    ):
        run = runner.run(experiment)
        results[(name, policy, label)] = run
        found = check_run(experiment, run)
        counts["per_run_checks"] += 1
        violations.extend(found)
        entry = next(e for e in entries if e.name == name)
        rows.append(
            {
                "scenario": name,
                "shape": entry.shape,
                "n_cores": entry.n_cores,
                "policy": policy,
                "governor": label,
                "end_cycle": run.end_cycle,
                "total_energy_nj": round(run.total_energy_nj, 3),
                "static_power_nw": round(run.static_power_nw, 3),
                "min_powered_ways": run.min_powered_ways(),
                "violations": len(found),
            }
        )
        if progress and (index + 1) % 20 == 0:
            say(f"  {index + 1}/{len(experiments)} runs checked")

    for entry in entries:
        grid = {
            (policy, label): results[(entry.name, policy, label)]
            for policy in policies
            for label in governor_specs
        }
        violations.extend(
            check_cross(entry.name, grid, governor_specs, entry.scenario)
        )
        counts["cross_run_checks"] += 1

    # Deep pass: re-simulate a deterministic sample live for the
    # checks that need the machine itself, not just the result.
    live_policies = [
        policy
        for policy in policies
        if Experiment.for_scenario(
            entries[0].scenario,
            system=suite_config(entries[0]),
            policy=policy,
        ).policy.info.profile_kwarg
        is None
    ]
    if deep > 0 and live_policies:
        stride = max(1, len(entries) // deep)
        sample = entries[::stride][:deep]
        for index, entry in enumerate(sample):
            policy = live_policies[index % len(live_policies)]
            labels = sorted(governor_specs)
            label = labels[index % len(labels)]
            experiment = Experiment.for_scenario(
                entry.scenario,
                system=suite_config(entry, refs_per_core),
                policy=policy,
                governor=governor_specs[label],
            )
            say(f"  live check: {_subject(experiment)}")
            _, found = check_live(experiment, runner.trace_for)
            counts["live_checks"] += 1
            violations.extend(found)

    say(
        f"suite {suite}: {counts['runs']} runs, "
        f"{len(violations)} violation(s)"
    )
    return SuiteReport(
        suite=suite,
        policies=policies,
        governors=tuple(governor_specs),
        rows=rows,
        violations=violations,
        counts=counts,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_report(report: SuiteReport) -> str:
    """The suite summary as a fixed-width table + verdict line."""
    header = (
        f"{'scenario':<22} {'policy':<12} {'governor':<12} "
        f"{'end cycle':>10} {'total nJ':>12} {'static nW':>10} "
        f"{'min ways':>8} {'bad':>4}"
    )
    lines = [header, "-" * len(header)]
    for row in report.rows:
        lines.append(
            f"{row['scenario']:<22} {row['policy']:<12} "
            f"{row['governor']:<12} {row['end_cycle']:>10} "
            f"{row['total_energy_nj']:>12.1f} "
            f"{row['static_power_nw']:>10.3f} "
            f"{row['min_powered_ways']:>8} {row['violations']:>4}"
        )
    counts = report.counts
    lines.append("")
    lines.append(
        f"suite={report.suite} scenarios={counts['scenarios']} "
        f"runs={counts['runs']} per-run={counts['per_run_checks']} "
        f"cross={counts['cross_run_checks']} live={counts['live_checks']}"
    )
    if report.ok:
        lines.append("OK: zero invariant violations")
    else:
        lines.append(f"FAIL: {len(report.violations)} invariant violation(s)")
        for violation in report.violations:
            lines.append(f"  {violation}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """``python -m repro.bench.differential [quick|full]``."""
    import sys

    suite = (argv or sys.argv[1:] or ["quick"])[0]
    report = run_suite(suite, progress=print)
    print(render_report(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
