"""The ``repro bench`` throughput harness.

Measures end-to-end simulator throughput — references per second of
wall-clock time — on a fixed (group x scheme x geometry) workload
matrix, so every PR records a comparable perf trajectory in
``BENCH_sim_throughput.json``.

Methodology
-----------
* Traces and Dynamic CPE's profiled miss curves are prepared *outside*
  the timed region: the harness times :meth:`CMPSimulator.run` only.
* Each case runs ``repeats`` times and keeps the best wall time
  (minimum is the standard estimator for noisy timers — anything
  slower is interference, never the code).
* "References" counts every demand reference the run processed,
  including warmup and the wrap-around execution of cores that
  finished their measurement window (``sum(core.refs_done)``), which
  is identical across engines producing bit-identical results — so
  throughput ratios between engines are exact.
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.sim.config import SystemConfig, scaled_four_core, scaled_two_core
from repro.sim.runner import ExperimentRunner
from repro.sim.simulator import CMPSimulator

#: canonical name of the tracked throughput artifact
BENCH_FILENAME = "BENCH_sim_throughput.json"

#: schema of the JSON payload; bump on incompatible layout changes
BENCH_SCHEMA = 1


@dataclass(frozen=True)
class BenchCase:
    """One timed simulation of the workload matrix."""

    name: str
    cores: int
    group: str
    policy: str
    refs_per_core: int
    #: DVFS governor short name (None = the nominal-frequency machine)
    governor: str | None = None

    def config(self) -> SystemConfig:
        """The scaled system configuration this case runs on."""
        factory = scaled_two_core if self.cores == 2 else scaled_four_core
        return factory(refs_per_core=self.refs_per_core)


def bench_matrix(quick: bool = False) -> list[BenchCase]:
    """The fixed workload matrix ``repro bench`` times.

    The default matrix covers every scheme on the two-core geometry
    (the paper's primary configuration and the acceptance target for
    engine optimisations) plus the two dynamic schemes on the
    four-core geometry.  ``--quick`` trims it to a smoke-sized pair;
    the quick cases are a subset of the full matrix (same names), so a
    quick run can be regression-checked against a committed full
    payload.
    """
    quick_cases = [
        BenchCase("2c-unmanaged-quick", 2, "G2-1", "unmanaged", 6_000),
        BenchCase("2c-cooperative-quick", 2, "G2-1", "cooperative", 6_000),
        BenchCase(
            "2c-cooperative-dvfs-quick", 2, "G2-1", "cooperative", 6_000,
            governor="coordinated",
        ),
    ]
    if quick:
        return quick_cases
    return quick_cases + [
        BenchCase("2c-unmanaged", 2, "G2-1", "unmanaged", 20_000),
        BenchCase("2c-fair_share", 2, "G2-1", "fair_share", 20_000),
        BenchCase("2c-cpe", 2, "G2-1", "cpe", 20_000),
        BenchCase("2c-ucp", 2, "G2-1", "ucp", 20_000),
        BenchCase("2c-cooperative", 2, "G2-1", "cooperative", 20_000),
        BenchCase(
            "2c-cooperative-dvfs", 2, "G2-1", "cooperative", 20_000,
            governor="coordinated",
        ),
        BenchCase("4c-ucp", 4, "G4-1", "ucp", 10_000),
        BenchCase("4c-cooperative", 4, "G4-1", "cooperative", 10_000),
    ]


def _prepare(case: BenchCase, runner: ExperimentRunner) -> Callable[[], CMPSimulator]:
    """Build a zero-argument factory for fresh, ready-to-run simulators.

    Everything expensive that is *not* the engine (trace generation,
    CPE's profiling runs) happens here, once, outside the timer.
    """
    from repro.workloads.groups import group_benchmarks

    config = case.config()
    benchmarks = group_benchmarks(case.group)
    traces = [runner.trace_for(benchmark, config) for benchmark in benchmarks]
    cpe_profiles = None
    if case.policy == "cpe":
        cpe_profiles = [
            [list(curve) for curve in runner.alone(benchmark, config).curves]
            for benchmark in benchmarks
        ]
    return lambda: CMPSimulator(
        config,
        traces,
        case.policy,
        cpe_profiles=cpe_profiles,
        governor=case.governor,
    )


def run_case(
    case: BenchCase,
    runner: ExperimentRunner | None = None,
    repeats: int = 3,
    engine: str | None = None,
) -> dict:
    """Time one case; returns its JSON-ready record.

    ``engine`` names the execution backend to time (``auto``/None
    defers to the simulator's normal selection).  The record carries
    the engine that actually ran, so payloads from different backends
    are distinguishable after the fact.
    """
    from repro.engine import resolve_engine

    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    resolved = resolve_engine(engine)
    factory = _prepare(case, runner or ExperimentRunner())
    best = math.inf
    refs = 0
    for _ in range(repeats):
        simulator = factory()
        started = time.perf_counter()
        simulator.run(engine=resolved)
        elapsed = time.perf_counter() - started
        refs = sum(core.refs_done for core in simulator.cores)
        best = min(best, elapsed)
    record = {
        "name": case.name,
        "cores": case.cores,
        "group": case.group,
        "policy": case.policy,
        "refs_per_core": case.refs_per_core,
        "references": refs,
        "seconds": best,
        "refs_per_sec": refs / best,
        "engine": resolved,
    }
    if case.governor is not None:
        record["governor"] = case.governor
    return record


def run_benchmarks(
    cases: Sequence[BenchCase],
    repeats: int = 3,
    progress: Callable[[str], None] | None = None,
    engine: str | None = None,
) -> dict:
    """Run the matrix and return the ``BENCH_sim_throughput`` payload."""
    from repro.engine import resolve_engine

    resolved = resolve_engine(engine)
    runner = ExperimentRunner()
    records = []
    for case in cases:
        record = run_case(case, runner, repeats, engine=resolved)
        records.append(record)
        if progress is not None:
            progress(
                f"  {record['name']:<24}{record['refs_per_sec']:>12,.0f} refs/s"
                f"  ({record['seconds']:.3f}s best of {repeats})"
            )
    aggregate = _geomean([record["refs_per_sec"] for record in records])
    return {
        "schema": BENCH_SCHEMA,
        "engine": resolved,
        "aggregate_refs_per_sec": aggregate,
        "cases": records,
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def _geomean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ----------------------------------------------------------------------
# Persistence and regression checking
# ----------------------------------------------------------------------
def write_payload(payload: dict, path: str | Path) -> None:
    """Write a bench payload as stable, diff-friendly JSON."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_payload(path: str | Path) -> dict:
    """Read a bench payload written by :func:`write_payload`."""
    return json.loads(Path(path).read_text())


def carry_trajectory(payload: dict, previous: dict | None) -> dict:
    """Copy the perf trajectory forward from the payload being replaced.

    ``trajectory`` is the append-only list of per-PR headline points
    (``{"pr", "engine", "aggregate_refs_per_sec", "speedup_over_seed",
    "note"}``) that keeps every engine generation's speedup visible
    after the measured cases are regenerated.  Regenerating the payload
    must never erase that history, so the CLI routes every overwrite
    through here; *appending* a new point stays a deliberate per-PR
    act (see docs/performance.md).
    """
    if previous:
        trajectory = previous.get("trajectory")
        if trajectory:
            payload["trajectory"] = trajectory
    return payload


def compare_to_baseline(
    current: dict, baseline: dict, tolerance: float = 0.20
) -> list[str]:
    """Regression report of ``current`` against ``baseline``.

    Returns one message per case whose throughput dropped by more than
    ``tolerance`` (fraction) relative to the baseline case of the same
    name; cases missing from either payload are ignored (the matrix is
    allowed to grow).  An empty list means no regression.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    baseline_cases = {case["name"]: case for case in baseline.get("cases", [])}
    regressions = []
    for case in current.get("cases", []):
        reference = baseline_cases.get(case["name"])
        if reference is None:
            continue
        floor = reference["refs_per_sec"] * (1.0 - tolerance)
        if case["refs_per_sec"] < floor:
            regressions.append(
                f"{case['name']}: {case['refs_per_sec']:,.0f} refs/s is "
                f"{1.0 - case['refs_per_sec'] / reference['refs_per_sec']:.1%} "
                f"below the baseline {reference['refs_per_sec']:,.0f} "
                f"(tolerance {tolerance:.0%})"
            )
    return regressions


def speedup_over(current: dict, baseline: dict) -> float | None:
    """Geomean throughput ratio over the cases shared with ``baseline``.

    Used to report the headline "x N over the pre-PR engine" number;
    ``None`` when the payloads share no cases.
    """
    baseline_cases = {case["name"]: case for case in baseline.get("cases", [])}
    ratios = [
        case["refs_per_sec"] / baseline_cases[case["name"]]["refs_per_sec"]
        for case in current.get("cases", [])
        if case["name"] in baseline_cases
    ]
    if not ratios:
        return None
    return _geomean(ratios)
