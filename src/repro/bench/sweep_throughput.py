"""The ``repro bench --sweep`` orchestration-throughput harness.

Where :mod:`repro.bench.harness` times the simulation *engine* (refs/s
of one big run), this times the *orchestration layer* (tasks/s of a
many-small-task sweep) — per-task dispatch, worker start-up, store
I/O and resume planning, exactly the costs PR 7's engine work exposed
as the new bottleneck.  Results append to the same per-PR trajectory
convention in ``BENCH_sweep_throughput.json``.

The workload is a threshold grid: (group × scheme × takeover
threshold) on short traces, plus the alone-run dependencies the
executor schedules implicitly — ~107 distinct task keys at full size,
each simulating for a few tens of milliseconds.  Per-task set-up
(trace generation, per-core trace views, runner construction) is
comparable to simulation time at this scale, so the difference
between a fresh runner per task and a persistent one dominates the
spread between pool backends.  Every group's trace set is shared by
all 25 of its scheme × threshold tasks (the trace cache key has no
threshold in it), which is exactly the reuse a warm worker banks.

Cases:

``cold-spawn``
    Empty store, the ``spawn`` pool (one fresh process + fresh runner
    per task — the historical executor shape).
``cold-warm``
    Empty store, the ``warm`` pool (persistent workers, one runner
    per worker for the whole sweep, batched dispatch).  The headline
    ratio ``warm_over_spawn`` is this case over ``cold-spawn``.
``resume-warm``
    The same sweep again on the now-full store with a fresh executor
    and store handle: every task is a cache hit, so this times the
    probe-based planning path (O(index read), no artifact parse).
    Its wall time is milliseconds and therefore noisy; it is recorded
    with ``"checked": false`` so ``--check`` never gates on it.
"""

from __future__ import annotations

import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable

from repro.bench.harness import _geomean
from repro.experiment import Experiment
from repro.orchestration.executor import SweepExecutor, resolve_jobs
from repro.orchestration.store import ResultStore
from repro.sim.config import scaled_two_core

#: canonical name of the tracked sweep-throughput artifact
SWEEP_BENCH_FILENAME = "BENCH_sweep_throughput.json"

#: schema of the JSON payload; bump on incompatible layout changes
SWEEP_BENCH_SCHEMA = 1


def sweep_workload(quick: bool = False) -> list[Experiment]:
    """The many-small-task spec list (alone dependencies *not*
    included — the executor adds those, as it would for a user sweep).

    Full size: 4 groups × 5 schemes × 5 thresholds = 100 group tasks,
    plus the member benchmarks' implicit alone runs (107 task keys
    total).  ``quick``: 2 × 5 × 3 = 30 group tasks on shorter traces.
    """
    from repro.sim.runner import ALL_POLICIES

    if quick:
        groups = ["G2-1", "G2-2"]
        policies = list(ALL_POLICIES)
        thresholds = [0.03, 0.07, 0.11]
        refs = 8_000
    else:
        groups = ["G2-1", "G2-2", "G2-3", "G2-4"]
        policies = list(ALL_POLICIES)
        thresholds = [0.02, 0.05, 0.08, 0.11, 0.14]
        refs = 30_000
    base = scaled_two_core(refs_per_core=refs)
    return [
        Experiment(group, policy, base.with_threshold(threshold))
        for threshold in thresholds
        for group in groups
        for policy in policies
    ]


def _time_sweep(
    specs: list[Experiment],
    store: ResultStore,
    pool: str,
    jobs: int,
    engine: str | None,
) -> dict:
    """One timed prefetch on a fresh executor; returns the case body."""
    started = time.perf_counter()
    with SweepExecutor(
        store, max_workers=jobs, engine=engine, pool=pool
    ) as executor:
        computed, cached = executor.prefetch(specs)
    seconds = time.perf_counter() - started
    tasks = computed + cached
    return {
        "pool": pool,
        "tasks": tasks,
        "computed": computed,
        "cached": cached,
        "seconds": seconds,
        "tasks_per_sec": tasks / seconds if seconds else 0.0,
    }


def run_sweep_benchmarks(
    quick: bool = False,
    jobs: int | None = None,
    engine: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the three cases and return the payload.

    Each cold case gets its own scratch store; ``resume-warm`` reuses
    the warm case's store through a *fresh* handle (no in-memory
    index or runner cache carried over), so it measures exactly what
    a restarted process pays.
    """
    from repro.engine import resolve_engine

    resolved_jobs = resolve_jobs(jobs)
    resolved_engine = resolve_engine(engine)
    specs = sweep_workload(quick=quick)
    records = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as scratch:
        plans = [
            ("cold-spawn", "spawn", Path(scratch) / "spawn", True),
            ("cold-warm", "warm", Path(scratch) / "warm", True),
            ("resume-warm", "warm", Path(scratch) / "warm", False),
        ]
        for name, pool, root, checked in plans:
            record = _time_sweep(
                specs, ResultStore(root), pool, resolved_jobs, resolved_engine
            )
            record["name"] = f"{name}-quick" if quick else name
            record["checked"] = checked
            records.append(record)
            if progress is not None:
                progress(
                    f"  {record['name']:<20}{record['tasks_per_sec']:>10,.1f} tasks/s"
                    f"  ({record['tasks']} tasks, {record['computed']} computed, "
                    f"{record['seconds']:.2f}s, {pool} pool)"
                )
    by_name = {record["name"].removesuffix("-quick"): record for record in records}
    warm_over_spawn = (
        by_name["cold-warm"]["tasks_per_sec"]
        / by_name["cold-spawn"]["tasks_per_sec"]
    )
    return {
        "schema": SWEEP_BENCH_SCHEMA,
        "kind": "sweep",
        "engine": resolved_engine,
        "jobs": resolved_jobs,
        "warm_over_spawn": warm_over_spawn,
        "aggregate_tasks_per_sec": _geomean(
            [record["tasks_per_sec"] for record in records if record["checked"]]
        ),
        "cases": records,
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def compare_sweep_to_baseline(
    current: dict, baseline: dict, tolerance: float = 0.20
) -> list[str]:
    """Regression report of ``current`` against a committed payload.

    Same contract as :func:`repro.bench.harness.compare_to_baseline`
    but over tasks/s, and cases recorded with ``"checked": false``
    (the millisecond-scale resume timing) never gate.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    baseline_cases = {case["name"]: case for case in baseline.get("cases", [])}
    regressions = []
    for case in current.get("cases", []):
        reference = baseline_cases.get(case["name"])
        if reference is None or not case.get("checked", True):
            continue
        floor = reference["tasks_per_sec"] * (1.0 - tolerance)
        if case["tasks_per_sec"] < floor:
            regressions.append(
                f"{case['name']}: {case['tasks_per_sec']:,.1f} tasks/s is "
                f"{1.0 - case['tasks_per_sec'] / reference['tasks_per_sec']:.1%} "
                f"below the baseline {reference['tasks_per_sec']:,.1f} "
                f"(tolerance {tolerance:.0%})"
            )
    return regressions
