"""System configurations (paper Table 2) and scaled-down variants.

The paper simulates a 4-wide out-of-order x86 with private 32 kB L1s
and a shared L2 (2 MB/8-way for two cores, 4 MB/16-way for four),
8-bank DRAM at 400 cycles, and a 5M-cycle monitoring/partitioning
epoch.  ``paper_two_core()``/``paper_four_core()`` reproduce those
geometries exactly.

Running 1B instructions per core through a pure-Python model is not
feasible, so the benchmark harness uses ``scaled_two_core()`` /
``scaled_four_core()``: the LLC keeps its associativity (the quantity
every partitioning result is expressed in) while sets, trace length
and epoch length shrink together.  All reported results are
normalised, so the scaling preserves the shape of every figure (see
README.md, "Scaling fidelity").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cache.geometry import CacheGeometry


@dataclass(frozen=True)
class SystemConfig:
    """Everything a simulation needs to know about the machine.

    ``flush_bucket_cycles`` sets the histogram resolution for the
    Figure 16 flush-bandwidth timeline; ``umon_interval`` is UMON's
    dynamic set-sampling stride; ``threshold`` is the paper's takeover
    threshold ``T`` (Section 5.1 selects 0.05).
    """

    n_cores: int
    l1: CacheGeometry
    l2: CacheGeometry
    l1_latency: int = 2
    l2_latency: int = 15
    mem_latency: int = 400
    mem_banks: int = 8
    mem_bank_busy: int = 40
    issue_width: int = 4
    epoch_cycles: int = 5_000_000
    umon_interval: int = 32
    umon_decay: float = 0.5
    threshold: float = 0.05
    refs_per_core: int = 120_000
    warmup_refs: int = 15_000
    flush_bucket_cycles: int = 250_000
    seed: int = 2012

    def with_threshold(self, threshold: float) -> "SystemConfig":
        """Copy of this config with a different takeover threshold."""
        return replace(self, threshold=threshold)

    def alone(self) -> "SystemConfig":
        """Single-core variant used for IPC_alone / profiling runs.

        The takeover threshold is normalised away: alone runs always
        use the Unmanaged policy, which ignores it, and keeping it
        out of the alone-run identity stops threshold sweeps from
        re-profiling every benchmark once per ``T`` (one alone run
        per benchmark per geometry).
        """
        default_threshold = SystemConfig.__dataclass_fields__["threshold"].default
        return replace(self, n_cores=1, threshold=default_threshold)

    def describe(self) -> list[tuple[str, str]]:
        """Table 2-style (parameter, configuration) rows."""
        return [
            ("Processor", f"{self.issue_width}-wide, trace-driven, blocking misses"),
            ("L1 DCache", f"{self.l1.describe()}, {self.l1_latency} cycle lat"),
            (
                "Shared L2",
                f"{self.l2.describe()}, {self.l2_latency} cycle lat",
            ),
            (
                "Memory",
                f"{self.mem_banks} DRAM banks, {self.mem_latency} cycle lat",
            ),
            ("Epoch", f"{self.epoch_cycles} cycles"),
            ("UMON sampling", f"1 in {self.umon_interval} sets"),
            ("Takeover threshold", f"{self.threshold}"),
        ]


def paper_two_core() -> SystemConfig:
    """Exact Table 2 two-core system (slow in pure Python)."""
    return SystemConfig(
        n_cores=2,
        l1=CacheGeometry(32 * 1024, 64, 4),
        l2=CacheGeometry(2 * 1024 * 1024, 64, 8),
        l2_latency=15,
        epoch_cycles=5_000_000,
        refs_per_core=50_000_000,
        warmup_refs=1_000_000,
        flush_bucket_cycles=250_000,
    )


def paper_four_core() -> SystemConfig:
    """Exact Table 2 four-core system (slow in pure Python)."""
    return SystemConfig(
        n_cores=4,
        l1=CacheGeometry(32 * 1024, 64, 4),
        l2=CacheGeometry(4 * 1024 * 1024, 64, 16),
        l2_latency=20,
        epoch_cycles=5_000_000,
        refs_per_core=50_000_000,
        warmup_refs=1_000_000,
        flush_bucket_cycles=250_000,
    )


def scaled_two_core(refs_per_core: int = 120_000) -> SystemConfig:
    """Laptop-scale two-core system used by the benchmark harness.

    The L2 keeps 8 ways but drops to 256 sets (128 kB); the epoch and
    trace shrink proportionally (an epoch covers roughly the same
    number of LLC accesses relative to the set count as the paper's
    5M-cycle interval, so takeover transitions span a comparable
    fraction of an epoch).  Ring footprints scale with the geometry,
    so partitioning pressure is preserved.
    """
    return SystemConfig(
        n_cores=2,
        l1=CacheGeometry(4 * 1024, 64, 4),
        l2=CacheGeometry(128 * 1024, 64, 8),
        l2_latency=15,
        epoch_cycles=350_000,
        umon_interval=4,
        refs_per_core=refs_per_core,
        warmup_refs=max(2_000, refs_per_core // 8),
        flush_bucket_cycles=20_000,
    )


def scaled_four_core(refs_per_core: int = 100_000) -> SystemConfig:
    """Laptop-scale four-core system (16-way, 256-set shared L2)."""
    return SystemConfig(
        n_cores=4,
        l1=CacheGeometry(4 * 1024, 64, 4),
        l2=CacheGeometry(256 * 1024, 64, 16),
        l2_latency=20,
        epoch_cycles=350_000,
        umon_interval=4,
        refs_per_core=refs_per_core,
        warmup_refs=max(2_000, refs_per_core // 8),
        flush_bucket_cycles=20_000,
    )
