"""Experiment driver: alone runs, group sweeps and normalisation.

The paper's protocol needs three kinds of runs, all cached here:

* **alone runs** (one benchmark, full LLC, Unmanaged) provide
  IPC_alone for weighted speedup, Table 3's MPKI classification and
  the per-epoch profiled miss curves Dynamic CPE consumes;
* **group runs** (a Table 4 group under one scheme) produce the
  figures' raw data;
* **sweeps** run every group under every scheme and normalise to the
  Fair Share baseline exactly as the paper's figures do.

Traces are generated once per (benchmark, geometry) and shared across
schemes, so every comparison is paired.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.speedup import weighted_speedup
from repro.sim.config import SystemConfig
from repro.sim.simulator import CMPSimulator
from repro.sim.stats import RunResult
from repro.workloads.groups import group_benchmarks, group_names
from repro.workloads.profiles import profile_for
from repro.workloads.trace import Trace, generate_trace

#: the five evaluated schemes, in the paper's legend order
ALL_POLICIES = ("unmanaged", "fair_share", "cpe", "ucp", "cooperative")


@dataclass(frozen=True)
class AloneResult:
    """Outcome of one benchmark's isolated profiling run."""

    benchmark: str
    ipc: float
    mpki: float
    #: per-epoch miss curves (for Dynamic CPE's profile)
    curves: tuple[tuple[int, ...], ...]


class ExperimentRunner:
    """Caches traces, alone runs and group runs within a process."""

    def __init__(self) -> None:
        self._traces: dict[tuple, Trace] = {}
        self._alone: dict[tuple, AloneResult] = {}
        self._runs: dict[tuple, RunResult] = {}

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def trace_for(self, benchmark: str, config: SystemConfig) -> Trace:
        """The deterministic trace of ``benchmark`` on this geometry."""
        key = (benchmark, config.l2, config.l1, config.refs_per_core, config.seed)
        trace = self._traces.get(key)
        if trace is None:
            trace = generate_trace(
                profile_for(benchmark),
                config.l2,
                config.l1.total_lines,
                config.refs_per_core,
                seed=config.seed,
            )
            self._traces[key] = trace
        return trace

    # ------------------------------------------------------------------
    # Alone runs
    # ------------------------------------------------------------------
    def alone(self, benchmark: str, config: SystemConfig) -> AloneResult:
        """Run ``benchmark`` by itself on the full LLC (cached)."""
        alone_config = config.alone()
        key = (benchmark, alone_config)
        result = self._alone.get(key)
        if result is None:
            trace = self.trace_for(benchmark, config)
            simulator = CMPSimulator(
                alone_config, [trace], "unmanaged", collect_curves=True
            )
            run = simulator.run()
            core = run.cores[0]
            result = AloneResult(
                benchmark=benchmark,
                ipc=core.ipc,
                mpki=core.mpki,
                curves=tuple(tuple(curve) for curve in run.epoch_curves),
            )
            self._alone[key] = result
        return result

    # ------------------------------------------------------------------
    # Group runs
    # ------------------------------------------------------------------
    def run_group(
        self,
        group: str,
        config: SystemConfig,
        policy: str,
    ) -> RunResult:
        """Run one Table 4 group under one scheme (cached)."""
        key = (group, policy, config)
        result = self._runs.get(key)
        if result is not None:
            return result
        benchmarks = group_benchmarks(group)
        if len(benchmarks) != config.n_cores:
            raise ValueError(
                f"group {group} has {len(benchmarks)} applications but the "
                f"config has {config.n_cores} cores"
            )
        traces = [self.trace_for(benchmark, config) for benchmark in benchmarks]
        cpe_profiles = None
        if policy == "cpe":
            cpe_profiles = [
                [list(curve) for curve in self.alone(benchmark, config).curves]
                for benchmark in benchmarks
            ]
        simulator = CMPSimulator(config, traces, policy, cpe_profiles=cpe_profiles)
        result = simulator.run()
        self._runs[key] = result
        return result

    def weighted_speedup_of(self, run: RunResult, config: SystemConfig) -> float:
        """Equation (1) for a finished group run."""
        alone_ipcs = [self.alone(core.benchmark, config).ipc for core in run.cores]
        return weighted_speedup(run.ipcs(), alone_ipcs)

    # ------------------------------------------------------------------
    # Sweeps and normalisation
    # ------------------------------------------------------------------
    def sweep(
        self,
        config: SystemConfig,
        policies: tuple[str, ...] = ALL_POLICIES,
        groups: list[str] | None = None,
    ) -> dict[str, dict[str, RunResult]]:
        """Run every group under every scheme."""
        groups = groups if groups is not None else group_names(config.n_cores)
        return {
            group: {policy: self.run_group(group, config, policy) for policy in policies}
            for group in groups
        }

    def normalized_weighted_speedup(
        self,
        results: dict[str, dict[str, RunResult]],
        config: SystemConfig,
        baseline: str = "fair_share",
    ) -> dict[str, dict[str, float]]:
        """Figure 5/8 rows: weighted speedup normalised to Fair Share."""
        table: dict[str, dict[str, float]] = {}
        for group, runs in results.items():
            speedups = {
                policy: self.weighted_speedup_of(run, config)
                for policy, run in runs.items()
            }
            base = speedups[baseline]
            table[group] = {policy: ws / base for policy, ws in speedups.items()}
        return table

    @staticmethod
    def normalized_energy(
        results: dict[str, dict[str, RunResult]],
        kind: str,
        baseline: str = "fair_share",
    ) -> dict[str, dict[str, float]]:
        """Figure 6/7/9/10 rows: energy normalised to Fair Share.

        ``kind`` is ``"dynamic"`` or ``"static"``.  Dynamic energy is
        compared per unit of work (nJ/kilo-instruction) and static
        energy as leakage power, matching the paper's protocol of
        equal work per application (see :class:`RunResult`).
        """
        if kind == "dynamic":
            attribute = "dynamic_energy_per_kiloinstruction"
        elif kind == "static":
            attribute = "static_power_nw"
        else:
            raise ValueError(f"kind must be 'dynamic' or 'static', got {kind!r}")
        table: dict[str, dict[str, float]] = {}
        for group, runs in results.items():
            base = getattr(runs[baseline], attribute)
            table[group] = {
                policy: getattr(run, attribute) / base for policy, run in runs.items()
            }
        return table


_SHARED_RUNNER: ExperimentRunner | None = None


def get_shared_runner() -> ExperimentRunner:
    """Process-wide runner so benchmarks share caches across files."""
    global _SHARED_RUNNER
    if _SHARED_RUNNER is None:
        _SHARED_RUNNER = ExperimentRunner()
    return _SHARED_RUNNER
