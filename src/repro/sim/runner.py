"""Experiment driver: one run path for alone/group/scenario specs.

The paper's protocol needs three kinds of runs, all served by
:meth:`ExperimentRunner.run` over a declarative
:class:`~repro.experiment.Experiment` spec:

* **alone runs** (one benchmark, full LLC, Unmanaged) provide
  IPC_alone for weighted speedup, Table 3's MPKI classification and
  the per-epoch profiled miss curves Dynamic CPE consumes;
* **group runs** (a Table 4 group under one scheme) produce the
  figures' raw data;
* **scenario runs** execute a time-varying schedule of core
  arrivals/departures/phase changes.

:meth:`ExperimentRunner.sweep` takes any iterable of specs, fans the
missing ones out across worker processes (when a store and
``max_workers`` are attached) and returns results keyed by spec.

Caching is two-level.  The in-process dictionary is the L1: hits
return the very same objects, so repeated reads within a session are
free.  When a :class:`~repro.orchestration.store.ResultStore` is
attached it acts as the L2: results are looked up on disk before
simulating and written through after, so sweeps survive process
restarts and can be sharded across worker processes (see
:mod:`repro.orchestration.executor`).  Store task keys come from
:meth:`Experiment.task_key`, which reproduces the historical
string-API keys exactly — artifacts written before the spec redesign
stay resolvable, bit-identically.

The historical string-based entry points (``run_group``,
``run_scenario``) survive as deprecation shims over specs; ``alone``
and the ``cached_*`` probes remain as thin documented conveniences.

Traces are generated once per (benchmark, geometry) and shared across
schemes, so every comparison is paired.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.experiment import Experiment
from repro.metrics.speedup import weighted_speedup
from repro.sim.config import SystemConfig
from repro.sim.simulator import CMPSimulator
from repro.sim.stats import RunResult
from repro.workloads.groups import group_names
from repro.workloads.profiles import profile_for
from repro.workloads.trace import Trace, generate_trace

if TYPE_CHECKING:
    from repro.orchestration.store import ResultStore
    from repro.scenarios.model import Scenario

#: the five evaluated schemes, in the paper's legend order
ALL_POLICIES = ("unmanaged", "fair_share", "cpe", "ucp", "cooperative")


@dataclass(frozen=True)
class AloneResult:
    """Outcome of one benchmark's isolated profiling run."""

    benchmark: str
    ipc: float
    mpki: float
    #: per-epoch miss curves (for Dynamic CPE's profile)
    curves: tuple[tuple[int, ...], ...]


def _deprecated(old: str, replacement: str) -> None:
    warnings.warn(
        f"ExperimentRunner.{old}() is deprecated; {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


class ExperimentRunner:
    """Caches and runs :class:`Experiment` specs; optionally disk-backed.

    ``store`` attaches an on-disk L2 cache of results; ``max_workers``
    > 1 additionally fans :meth:`sweep` and :meth:`prefetch` out
    across worker processes (a store is required for that — workers
    hand results back through it).
    """

    def __init__(
        self,
        store: "ResultStore | None" = None,
        max_workers: int | None = None,
    ) -> None:
        self._traces: dict[tuple, Trace] = {}
        self._results: dict[Experiment, RunResult | AloneResult] = {}
        self.store = store
        self.max_workers = max_workers

    def _parallel(self) -> bool:
        return self.store is not None and (self.max_workers or 0) > 1

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def trace_for(self, benchmark: str, config: SystemConfig) -> Trace:
        """The deterministic trace of ``benchmark`` on this geometry."""
        key = (benchmark, config.l2, config.l1, config.refs_per_core, config.seed)
        trace = self._traces.get(key)
        if trace is None:
            trace = generate_trace(
                profile_for(benchmark),
                config.l2,
                config.l1.total_lines,
                config.refs_per_core,
                seed=config.seed,
            )
            self._traces[key] = trace
        return trace

    # ------------------------------------------------------------------
    # The one run path
    # ------------------------------------------------------------------
    def run(self, experiment: Experiment) -> RunResult | AloneResult:
        """Run one spec (L1/L2 cached): the single entry point for
        alone, group and scenario simulations alike.

        When tracing is enabled the cache-miss path records a task
        span and — with a store attached — persists the task's trace
        events as a ``kind="trace"`` artifact under
        :func:`repro.obs.trace.trace_key`, so every execution tier
        (inline, warm/spawn workers, ssh remotes, serve jobs) ships
        its traces through the same store plumbing as results.
        """
        result = self.cached(experiment)
        if result is not None:
            return result
        from repro.obs.trace import recorder as obs_recorder

        rec = obs_recorder()
        if rec.enabled:
            mark = rec.mark()
            token = rec.begin(
                experiment.label,
                cat="task",
                kind=experiment.kind,
                key=experiment.task_key(),
            )
        kind = experiment.kind
        if kind == "alone":
            result = self._simulate_alone(experiment)
        elif kind == "group":
            result = self._simulate_group(experiment)
        else:
            result = self._simulate_scenario(experiment)
        self._to_store(experiment, result)
        if rec.enabled:
            rec.end(token)
            self._trace_to_store(experiment, rec.events_since(mark))
        self._results[experiment] = result
        return result

    def cached(self, experiment: Experiment) -> RunResult | AloneResult | None:
        """L1/L2 lookup of a spec without simulating.

        A disk hit is promoted into the in-memory cache, so callers
        that probe and then read (the sweep executor's planning pass)
        parse each artifact once.
        """
        result = self._results.get(experiment)
        if result is None:
            result = self._from_store(experiment)
            if result is not None:
                self._results[experiment] = result
        return result

    def probe(self, experiment: Experiment) -> bool:
        """Whether this spec's result is already available — without
        parsing it.

        An in-memory hit answers immediately; otherwise the store's
        index is consulted (:meth:`ResultStore.probe`: one index
        lookup plus one ``stat``, no payload read).  This is what the
        sweep executor's planning pass uses, so resuming a fully
        cached sweep never deserialises an artifact.
        """
        if experiment in self._results:
            return True
        if self.store is None:
            return False
        return self.store.probe(experiment.task_key())

    def sweep(
        self,
        experiments: "Iterable[Experiment] | SystemConfig",
        policies: Sequence[str] = ALL_POLICIES,
        groups: list[str] | None = None,
    ) -> dict:
        """Run many specs (in parallel if wired), keyed by spec.

        Legacy form: ``sweep(config, policies=..., groups=...)`` runs
        the (group × scheme) cross-product on one system and returns
        the historical ``{group: {policy: RunResult}}`` table.
        """
        if isinstance(experiments, SystemConfig):
            config = experiments
            groups = groups if groups is not None else group_names(config.n_cores)
            grid = Experiment.grid(config, groups, list(policies))
            self.prefetch(grid)
            return {
                group: {
                    policy: self.run(Experiment(group, policy, config))
                    for policy in policies
                }
                for group in groups
            }
        experiments = list(experiments)
        self.prefetch(experiments)
        return {experiment: self.run(experiment) for experiment in experiments}

    # ------------------------------------------------------------------
    # Simulation bodies (cache misses only)
    # ------------------------------------------------------------------
    def _simulate_alone(self, experiment: Experiment) -> AloneResult:
        benchmark = experiment.workload.name
        config = experiment.system  # already the one-core alone() variant
        trace = self.trace_for(benchmark, config)
        simulator = CMPSimulator(
            config, [trace], experiment.policy, collect_curves=True
        )
        run = simulator.run()
        core = run.cores[0]
        return AloneResult(
            benchmark=benchmark,
            ipc=core.ipc,
            mpki=core.mpki,
            curves=tuple(tuple(curve) for curve in run.epoch_curves),
        )

    def _profiles_for(
        self, experiment: Experiment, benchmarks: Iterable[str | None]
    ) -> list[list]:
        """Per-slot profiled miss curves for profile-driven policies
        (absent slots get a flat zero curve the lookahead never
        rewards)."""
        config = experiment.system
        profiles: list[list] = []
        for benchmark in benchmarks:
            if benchmark is None:
                profiles.append([0] * (config.l2.ways + 1))
            else:
                profiles.append(
                    [
                        list(curve)
                        for curve in self.alone(benchmark, config).curves
                    ]
                )
        return profiles

    def _simulate_group(self, experiment: Experiment) -> RunResult:
        config = experiment.system
        benchmarks = experiment.workload.benchmarks
        traces = [self.trace_for(benchmark, config) for benchmark in benchmarks]
        profiles = None
        if experiment.policy.info.profile_kwarg is not None:
            profiles = self._profiles_for(experiment, benchmarks)
        simulator = CMPSimulator(
            config,
            traces,
            experiment.policy,
            cpe_profiles=profiles,
            governor=experiment.governor,
        )
        return simulator.run()

    def _simulate_scenario(self, experiment: Experiment) -> RunResult:
        config = experiment.system
        scenario = experiment.scenario
        profiles = None
        if experiment.policy.info.profile_kwarg is not None:
            profiles = self._profiles_for(
                experiment, scenario.arrival_benchmarks(config.n_cores)
            )
        simulator = CMPSimulator.for_scenario(
            config,
            scenario,
            experiment.policy,
            lambda benchmark: self.trace_for(benchmark, config),
            cpe_profiles=profiles,
            collect_timeline=True,
            governor=experiment.governor,
        )
        return simulator.run()

    # ------------------------------------------------------------------
    # Store plumbing
    # ------------------------------------------------------------------
    def _from_store(
        self, experiment: Experiment
    ) -> RunResult | AloneResult | None:
        if self.store is None:
            return None
        from repro.orchestration import serialize

        payload = self.store.get(experiment.task_key())
        if payload is None:
            return None
        if experiment.kind == "alone":
            return serialize.alone_result_from_dict(payload)
        return serialize.run_result_from_dict(payload)

    def _to_store(
        self, experiment: Experiment, result: RunResult | AloneResult
    ) -> None:
        if self.store is None:
            return
        from repro.orchestration import serialize

        payload = (
            serialize.alone_result_to_dict(result)
            if isinstance(result, AloneResult)
            else serialize.run_result_to_dict(result)
        )
        self.store.put(
            experiment.task_key(),
            payload,
            kind=experiment.kind,
            meta=experiment.store_meta(),
        )

    def _trace_to_store(
        self, experiment: Experiment, events: list[dict]
    ) -> None:
        """Persist one task's trace events next to its result artifact."""
        if self.store is None or not events:
            return
        from repro.obs.trace import task_trace_payload, trace_key

        key = experiment.task_key()
        self.store.put(
            trace_key(key),
            task_trace_payload(key, experiment.label, events),
            kind="trace",
            meta={"task": key, "label": experiment.label},
        )

    # ------------------------------------------------------------------
    # Convenience wrappers (thin, spec-backed)
    # ------------------------------------------------------------------
    def alone(self, benchmark: str, config: SystemConfig) -> AloneResult:
        """Run ``benchmark`` by itself on the full LLC (cached)."""
        return self.run(Experiment.alone_run(benchmark, system=config))

    def cached_alone(
        self, benchmark: str, config: SystemConfig
    ) -> AloneResult | None:
        """L1/L2 probe of an alone run without simulating."""
        return self.cached(Experiment.alone_run(benchmark, system=config))

    def cached_group(
        self, group: str, config: SystemConfig, policy: str
    ) -> RunResult | None:
        """L1/L2 probe of a group run without simulating."""
        return self.cached(Experiment(group, policy, config))

    def cached_scenario(
        self, scenario: "Scenario", config: SystemConfig, policy: str
    ) -> RunResult | None:
        """L1/L2 probe of a scenario run without simulating."""
        return self.cached(
            Experiment.for_scenario(scenario, system=config, policy=policy)
        )

    def run_group(
        self,
        group: str,
        config: SystemConfig,
        policy: str,
    ) -> RunResult:
        """Deprecated: ``run(Experiment(group, policy, config))``."""
        _deprecated(
            "run_group", "use run(Experiment(group, policy, system)) instead"
        )
        return self.run(Experiment(group, policy, config))

    def run_scenario(
        self,
        scenario: "Scenario",
        config: SystemConfig,
        policy: str,
    ) -> RunResult:
        """Deprecated: ``run(Experiment.for_scenario(...))``."""
        _deprecated(
            "run_scenario",
            "use run(Experiment.for_scenario(scenario, system=system, "
            "policy=policy)) instead",
        )
        return self.run(
            Experiment.for_scenario(scenario, system=config, policy=policy)
        )

    def weighted_speedup_of(self, run: RunResult, config: SystemConfig) -> float:
        """Equation (1) for a finished group run."""
        alone_ipcs = [self.alone(core.benchmark, config).ipc for core in run.cores]
        return weighted_speedup(run.ipcs(), alone_ipcs)

    # ------------------------------------------------------------------
    # Parallel materialisation
    # ------------------------------------------------------------------
    def prefetch(
        self, tasks: "Iterable[Experiment | tuple[str, str, SystemConfig]]"
    ) -> tuple[int, int]:
        """Materialise specs into the store ahead of reads.

        Accepts :class:`Experiment` specs (legacy ``(group, policy,
        config)`` tuples are coerced).  With a store and
        ``max_workers`` > 1 the specs (plus the alone runs they depend
        on) are sharded across worker processes; otherwise this is a
        no-op and the tasks run lazily in-process.  Returns
        ``(computed, cached)`` counts.
        """
        if not self._parallel():
            return (0, 0)
        from repro.orchestration.executor import SweepExecutor

        executor = SweepExecutor(self.store, self.max_workers, runner=self)
        return executor.prefetch(tasks)

    def prefetch_alone(
        self, config: SystemConfig, benchmarks: Iterable[str]
    ) -> tuple[int, int]:
        """Materialise alone runs for ``benchmarks`` into the store.

        The parallel counterpart of calling :meth:`alone` in a loop;
        a no-op without a store and ``max_workers`` > 1.
        """
        if not self._parallel():
            return (0, 0)
        from repro.orchestration.executor import SweepExecutor

        executor = SweepExecutor(self.store, self.max_workers, runner=self)
        return executor.prefetch_alone(config.alone(), benchmarks)

    # ------------------------------------------------------------------
    # Normalisation
    # ------------------------------------------------------------------
    def normalized_weighted_speedup(
        self,
        results: dict[str, dict[str, RunResult]],
        config: SystemConfig,
        baseline: str = "fair_share",
    ) -> dict[str, dict[str, float]]:
        """Figure 5/8 rows: weighted speedup normalised to Fair Share."""
        table: dict[str, dict[str, float]] = {}
        for group, runs in results.items():
            speedups = {
                policy: self.weighted_speedup_of(run, config)
                for policy, run in runs.items()
            }
            base = speedups[baseline]
            table[group] = {policy: ws / base for policy, ws in speedups.items()}
        return table

    @staticmethod
    def normalized_energy(
        results: dict[str, dict[str, RunResult]],
        kind: str,
        baseline: str = "fair_share",
    ) -> dict[str, dict[str, float]]:
        """Figure 6/7/9/10 rows: energy normalised to Fair Share.

        ``kind`` is ``"dynamic"`` or ``"static"``.  Dynamic energy is
        compared per unit of work (nJ/kilo-instruction) and static
        energy as leakage power, matching the paper's protocol of
        equal work per application (see :class:`RunResult`).
        """
        if kind == "dynamic":
            attribute = "dynamic_energy_per_kiloinstruction"
        elif kind == "static":
            attribute = "static_power_nw"
        else:
            raise ValueError(f"kind must be 'dynamic' or 'static', got {kind!r}")
        table: dict[str, dict[str, float]] = {}
        for group, runs in results.items():
            base = getattr(runs[baseline], attribute)
            table[group] = {
                policy: getattr(run, attribute) / base for policy, run in runs.items()
            }
        return table


_SHARED_RUNNER: ExperimentRunner | None = None


def get_shared_runner() -> ExperimentRunner:
    """Process-wide runner so benchmarks share caches across files.

    ``$REPRO_STORE`` (a directory path) attaches the on-disk result
    store and ``$REPRO_JOBS`` enables parallel sweeps, so the same
    entry point serves both quick in-memory scripting and orchestrated
    runs.
    """
    global _SHARED_RUNNER
    if _SHARED_RUNNER is None:
        store = None
        if os.environ.get("REPRO_STORE"):
            from repro.orchestration.store import ResultStore, default_store_path

            store = ResultStore(default_store_path())
        jobs = None
        if os.environ.get("REPRO_JOBS"):
            from repro.orchestration.executor import resolve_jobs

            jobs = resolve_jobs(None)
        _SHARED_RUNNER = ExperimentRunner(store=store, max_workers=jobs)
    return _SHARED_RUNNER
