"""Experiment driver: alone runs, group sweeps and normalisation.

The paper's protocol needs three kinds of runs, all cached here:

* **alone runs** (one benchmark, full LLC, Unmanaged) provide
  IPC_alone for weighted speedup, Table 3's MPKI classification and
  the per-epoch profiled miss curves Dynamic CPE consumes;
* **group runs** (a Table 4 group under one scheme) produce the
  figures' raw data;
* **sweeps** run every group under every scheme and normalise to the
  Fair Share baseline exactly as the paper's figures do.

Caching is two-level.  The in-process dictionaries are the L1: hits
return the very same objects, so repeated reads within a session are
free.  When a :class:`~repro.orchestration.store.ResultStore` is
attached it acts as the L2: results are looked up on disk before
simulating and written through after, so sweeps survive process
restarts and can be sharded across worker processes (see
:mod:`repro.orchestration.executor`).  Stored artifacts round-trip
bit-exactly, so cached and fresh results are indistinguishable.

Traces are generated once per (benchmark, geometry) and shared across
schemes, so every comparison is paired.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.metrics.speedup import weighted_speedup
from repro.sim.config import SystemConfig
from repro.sim.simulator import CMPSimulator
from repro.sim.stats import RunResult
from repro.workloads.groups import group_benchmarks, group_names
from repro.workloads.profiles import profile_for
from repro.workloads.trace import Trace, generate_trace

if TYPE_CHECKING:
    from repro.orchestration.store import ResultStore
    from repro.scenarios.model import Scenario

#: the five evaluated schemes, in the paper's legend order
ALL_POLICIES = ("unmanaged", "fair_share", "cpe", "ucp", "cooperative")


@dataclass(frozen=True)
class AloneResult:
    """Outcome of one benchmark's isolated profiling run."""

    benchmark: str
    ipc: float
    mpki: float
    #: per-epoch miss curves (for Dynamic CPE's profile)
    curves: tuple[tuple[int, ...], ...]


class ExperimentRunner:
    """Caches traces, alone runs and group runs; optionally disk-backed.

    ``store`` attaches an on-disk L2 cache of results; ``max_workers``
    > 1 additionally fans :meth:`sweep` and :meth:`prefetch` out
    across worker processes (a store is required for that — workers
    hand results back through it).
    """

    def __init__(
        self,
        store: "ResultStore | None" = None,
        max_workers: int | None = None,
    ) -> None:
        self._traces: dict[tuple, Trace] = {}
        self._alone: dict[tuple, AloneResult] = {}
        self._runs: dict[tuple, RunResult] = {}
        self._scenario_runs: dict[tuple, RunResult] = {}
        self.store = store
        self.max_workers = max_workers

    def _parallel(self) -> bool:
        return self.store is not None and (self.max_workers or 0) > 1

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def trace_for(self, benchmark: str, config: SystemConfig) -> Trace:
        """The deterministic trace of ``benchmark`` on this geometry."""
        key = (benchmark, config.l2, config.l1, config.refs_per_core, config.seed)
        trace = self._traces.get(key)
        if trace is None:
            trace = generate_trace(
                profile_for(benchmark),
                config.l2,
                config.l1.total_lines,
                config.refs_per_core,
                seed=config.seed,
            )
            self._traces[key] = trace
        return trace

    # ------------------------------------------------------------------
    # Alone runs
    # ------------------------------------------------------------------
    def cached_alone(
        self, benchmark: str, config: SystemConfig
    ) -> AloneResult | None:
        """L1/L2 lookup of an alone run without simulating.

        A disk hit is promoted into the in-memory cache, so callers
        that probe and then read (the sweep executor's planning pass)
        parse each artifact once.
        """
        alone_config = config.alone()
        key = (benchmark, alone_config)
        result = self._alone.get(key)
        if result is None:
            result = self._alone_from_store(benchmark, alone_config)
            if result is not None:
                self._alone[key] = result
        return result

    def alone(self, benchmark: str, config: SystemConfig) -> AloneResult:
        """Run ``benchmark`` by itself on the full LLC (cached)."""
        alone_config = config.alone()
        result = self.cached_alone(benchmark, config)
        if result is None:
            trace = self.trace_for(benchmark, config)
            simulator = CMPSimulator(
                alone_config, [trace], "unmanaged", collect_curves=True
            )
            run = simulator.run()
            core = run.cores[0]
            result = AloneResult(
                benchmark=benchmark,
                ipc=core.ipc,
                mpki=core.mpki,
                curves=tuple(tuple(curve) for curve in run.epoch_curves),
            )
            self._alone_to_store(benchmark, alone_config, result)
            self._alone[(benchmark, alone_config)] = result
        return result

    def _alone_from_store(
        self, benchmark: str, alone_config: SystemConfig
    ) -> AloneResult | None:
        if self.store is None:
            return None
        from repro.orchestration import serialize

        payload = self.store.get(serialize.alone_task_key(alone_config, benchmark))
        if payload is None:
            return None
        return serialize.alone_result_from_dict(payload)

    def _alone_to_store(
        self, benchmark: str, alone_config: SystemConfig, result: AloneResult
    ) -> None:
        if self.store is None:
            return
        from repro.orchestration import serialize

        self.store.put(
            serialize.alone_task_key(alone_config, benchmark),
            serialize.alone_result_to_dict(result),
            kind="alone",
            meta={"benchmark": benchmark, "l2": alone_config.l2.describe()},
        )

    # ------------------------------------------------------------------
    # Group runs
    # ------------------------------------------------------------------
    def cached_group(
        self, group: str, config: SystemConfig, policy: str
    ) -> RunResult | None:
        """L1/L2 lookup of a group run without simulating.

        Disk hits are promoted into the in-memory cache (see
        :meth:`cached_alone`).
        """
        key = (group, policy, config)
        result = self._runs.get(key)
        if result is None:
            result = self._group_from_store(group, config, policy)
            if result is not None:
                self._runs[key] = result
        return result

    def run_group(
        self,
        group: str,
        config: SystemConfig,
        policy: str,
    ) -> RunResult:
        """Run one Table 4 group under one scheme (cached)."""
        benchmarks = group_benchmarks(group)
        if len(benchmarks) != config.n_cores:
            raise ValueError(
                f"group {group} has {len(benchmarks)} applications but the "
                f"config has {config.n_cores} cores"
            )
        result = self.cached_group(group, config, policy)
        if result is not None:
            return result
        traces = [self.trace_for(benchmark, config) for benchmark in benchmarks]
        cpe_profiles = None
        if policy == "cpe":
            cpe_profiles = [
                [list(curve) for curve in self.alone(benchmark, config).curves]
                for benchmark in benchmarks
            ]
        simulator = CMPSimulator(config, traces, policy, cpe_profiles=cpe_profiles)
        result = simulator.run()
        self._group_to_store(group, config, policy, result)
        self._runs[(group, policy, config)] = result
        return result

    def _group_from_store(
        self, group: str, config: SystemConfig, policy: str
    ) -> RunResult | None:
        if self.store is None:
            return None
        from repro.orchestration import serialize

        payload = self.store.get(serialize.group_task_key(config, group, policy))
        if payload is None:
            return None
        return serialize.run_result_from_dict(payload)

    def _group_to_store(
        self, group: str, config: SystemConfig, policy: str, result: RunResult
    ) -> None:
        if self.store is None:
            return
        from repro.orchestration import serialize

        self.store.put(
            serialize.group_task_key(config, group, policy),
            serialize.run_result_to_dict(result),
            kind="group",
            meta={
                "group": group,
                "policy": policy,
                "n_cores": config.n_cores,
                "l2": config.l2.describe(),
            },
        )

    def weighted_speedup_of(self, run: RunResult, config: SystemConfig) -> float:
        """Equation (1) for a finished group run."""
        alone_ipcs = [self.alone(core.benchmark, config).ipc for core in run.cores]
        return weighted_speedup(run.ipcs(), alone_ipcs)

    # ------------------------------------------------------------------
    # Scenario runs (time-varying schedules)
    # ------------------------------------------------------------------
    def cached_scenario(
        self, scenario: "Scenario", config: SystemConfig, policy: str
    ) -> RunResult | None:
        """L1/L2 lookup of a scenario run without simulating."""
        key = (scenario, policy, config)
        result = self._scenario_runs.get(key)
        if result is None:
            result = self._scenario_from_store(scenario, config, policy)
            if result is not None:
                self._scenario_runs[key] = result
        return result

    def run_scenario(
        self,
        scenario: "Scenario",
        config: SystemConfig,
        policy: str,
    ) -> RunResult:
        """Run one time-varying schedule under one scheme (cached).

        The degenerate static scenario routes through the same engine
        path as :meth:`run_group` and produces identical numbers; it is
        cached under its own scenario key, so the two never collide.
        """
        from repro.sim.simulator import CMPSimulator

        scenario.validate(config.n_cores)
        result = self.cached_scenario(scenario, config, policy)
        if result is not None:
            return result
        cpe_profiles = None
        if policy == "cpe":
            cpe_profiles = self._scenario_cpe_profiles(scenario, config)
        simulator = CMPSimulator.for_scenario(
            config,
            scenario,
            policy,
            lambda benchmark: self.trace_for(benchmark, config),
            cpe_profiles=cpe_profiles,
            collect_timeline=True,
        )
        result = simulator.run()
        self._scenario_to_store(scenario, config, policy, result)
        self._scenario_runs[(scenario, policy, config)] = result
        return result

    def _scenario_cpe_profiles(
        self, scenario: "Scenario", config: SystemConfig
    ) -> list[list]:
        """Per-slot profiled miss curves (arrival benchmark; absent
        slots get a flat zero curve the lookahead never rewards)."""
        profiles: list[list] = []
        for benchmark in scenario.arrival_benchmarks(config.n_cores):
            if benchmark is None:
                profiles.append([0] * (config.l2.ways + 1))
            else:
                profiles.append(
                    [list(curve) for curve in self.alone(benchmark, config).curves]
                )
        return profiles

    def _scenario_from_store(
        self, scenario: "Scenario", config: SystemConfig, policy: str
    ) -> RunResult | None:
        if self.store is None:
            return None
        from repro.orchestration import serialize

        payload = self.store.get(
            serialize.scenario_task_key(config, scenario, policy)
        )
        if payload is None:
            return None
        return serialize.run_result_from_dict(payload)

    def _scenario_to_store(
        self,
        scenario: "Scenario",
        config: SystemConfig,
        policy: str,
        result: RunResult,
    ) -> None:
        if self.store is None:
            return
        from repro.orchestration import serialize

        self.store.put(
            serialize.scenario_task_key(config, scenario, policy),
            serialize.run_result_to_dict(result),
            kind="scenario",
            meta={
                "scenario": scenario.name,
                "policy": policy,
                "n_cores": config.n_cores,
                "l2": config.l2.describe(),
                "events": len(scenario.events),
            },
        )

    # ------------------------------------------------------------------
    # Sweeps and normalisation
    # ------------------------------------------------------------------
    def prefetch(
        self, tasks: Iterable[tuple[str, str, SystemConfig]]
    ) -> tuple[int, int]:
        """Materialise (group, policy, config) tasks into the store.

        With a store and ``max_workers`` > 1 the tasks (plus the alone
        runs they depend on) are sharded across worker processes;
        otherwise this is a no-op and the tasks run lazily in-process.
        Returns ``(computed, cached)`` counts.
        """
        if not self._parallel():
            return (0, 0)
        from repro.orchestration.executor import SweepExecutor

        executor = SweepExecutor(self.store, self.max_workers, runner=self)
        return executor.prefetch(tasks)

    def prefetch_alone(
        self, config: SystemConfig, benchmarks: Iterable[str]
    ) -> tuple[int, int]:
        """Materialise alone runs for ``benchmarks`` into the store.

        The parallel counterpart of calling :meth:`alone` in a loop;
        a no-op without a store and ``max_workers`` > 1.
        """
        if not self._parallel():
            return (0, 0)
        from repro.orchestration.executor import SweepExecutor

        executor = SweepExecutor(self.store, self.max_workers, runner=self)
        return executor.prefetch_alone(config.alone(), benchmarks)

    def sweep(
        self,
        config: SystemConfig,
        policies: tuple[str, ...] = ALL_POLICIES,
        groups: list[str] | None = None,
    ) -> dict[str, dict[str, RunResult]]:
        """Run every group under every scheme (in parallel if wired)."""
        groups = groups if groups is not None else group_names(config.n_cores)
        self.prefetch(
            (group, policy, config) for group in groups for policy in policies
        )
        return {
            group: {policy: self.run_group(group, config, policy) for policy in policies}
            for group in groups
        }

    def normalized_weighted_speedup(
        self,
        results: dict[str, dict[str, RunResult]],
        config: SystemConfig,
        baseline: str = "fair_share",
    ) -> dict[str, dict[str, float]]:
        """Figure 5/8 rows: weighted speedup normalised to Fair Share."""
        table: dict[str, dict[str, float]] = {}
        for group, runs in results.items():
            speedups = {
                policy: self.weighted_speedup_of(run, config)
                for policy, run in runs.items()
            }
            base = speedups[baseline]
            table[group] = {policy: ws / base for policy, ws in speedups.items()}
        return table

    @staticmethod
    def normalized_energy(
        results: dict[str, dict[str, RunResult]],
        kind: str,
        baseline: str = "fair_share",
    ) -> dict[str, dict[str, float]]:
        """Figure 6/7/9/10 rows: energy normalised to Fair Share.

        ``kind`` is ``"dynamic"`` or ``"static"``.  Dynamic energy is
        compared per unit of work (nJ/kilo-instruction) and static
        energy as leakage power, matching the paper's protocol of
        equal work per application (see :class:`RunResult`).
        """
        if kind == "dynamic":
            attribute = "dynamic_energy_per_kiloinstruction"
        elif kind == "static":
            attribute = "static_power_nw"
        else:
            raise ValueError(f"kind must be 'dynamic' or 'static', got {kind!r}")
        table: dict[str, dict[str, float]] = {}
        for group, runs in results.items():
            base = getattr(runs[baseline], attribute)
            table[group] = {
                policy: getattr(run, attribute) / base for policy, run in runs.items()
            }
        return table


_SHARED_RUNNER: ExperimentRunner | None = None


def get_shared_runner() -> ExperimentRunner:
    """Process-wide runner so benchmarks share caches across files.

    ``$REPRO_STORE`` (a directory path) attaches the on-disk result
    store and ``$REPRO_JOBS`` enables parallel sweeps, so the same
    entry point serves both quick in-memory scripting and orchestrated
    runs.
    """
    global _SHARED_RUNNER
    if _SHARED_RUNNER is None:
        store = None
        if os.environ.get("REPRO_STORE"):
            from repro.orchestration.store import ResultStore, default_store_path

            store = ResultStore(default_store_path())
        jobs = None
        if os.environ.get("REPRO_JOBS"):
            from repro.orchestration.executor import resolve_jobs

            jobs = resolve_jobs(None)
        _SHARED_RUNNER = ExperimentRunner(store=store, max_workers=jobs)
    return _SHARED_RUNNER
