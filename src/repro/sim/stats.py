"""Result records produced by one simulation run.

A :class:`RunResult` gathers everything the paper's figures consume:
per-core IPC and MPKI (for weighted speedup and Table 3), the LLC
policy statistics (average ways probed — dynamic energy; takeover
events — Figure 14; transition durations — Figure 15; flush timeline —
Figure 16) and the integrated energy totals (Figures 6/7/9/10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.partitioning.base import PolicyStats
from repro.scenarios import timeline as timeline_helpers
from repro.scenarios.timeline import TimelineSample


@dataclass(frozen=True)
class CoreResult:
    """Final per-core performance numbers (after warmup, at target)."""

    benchmark: str
    instructions: int
    cycles: int
    llc_demand_accesses: int
    llc_demand_misses: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the measured window."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def mpki(self) -> float:
        """LLC demand misses per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return self.llc_demand_misses / self.instructions * 1000.0


@dataclass(frozen=True)
class RunResult:
    """Complete outcome of one multi-programmed simulation."""

    policy: str
    cores: list[CoreResult]
    dynamic_energy_nj: float
    static_energy_nj: float
    average_active_ways: float
    average_ways_probed: float
    end_cycle: int
    memory_reads: int
    memory_writebacks: int
    policy_stats: PolicyStats
    #: instructions executed by all cores inside the energy window
    #: (including wrap-around execution of cores that finished early)
    window_instructions: int = 0
    #: length of the energy window in cycles
    window_cycles: int = 0
    #: per-epoch miss curves of core 0 when curve collection was on
    epoch_curves: list[list[int]] = field(default_factory=list)
    #: name of the scenario that produced this run ("static" for the
    #: classic fixed-workload protocol)
    scenario: str = "static"
    #: per-epoch/per-event machine observations (scenario runs only;
    #: empty for classic static runs unless explicitly requested)
    timeline: list[TimelineSample] = field(default_factory=list)
    #: governor short name of a DVFS run (None = nominal frequency)
    governor: str | None = None
    #: V²-scaled core dynamic energy (DVFS runs; 0.0 without a governor)
    core_dynamic_energy_nj: float = 0.0
    #: V-scaled core leakage energy (DVFS runs; 0.0 without a governor)
    core_static_energy_nj: float = 0.0
    #: engine-invariant run diagnostics (epoch/event counts) recorded
    #: only when tracing is enabled; empty — and omitted from the
    #: serialized form — otherwise
    diagnostics: dict = field(default_factory=dict)

    @property
    def core_energy_nj(self) -> float:
        """Total core-side energy (0.0 for runs without a governor)."""
        return self.core_dynamic_energy_nj + self.core_static_energy_nj

    @property
    def total_energy_nj(self) -> float:
        """LLC dynamic + LLC static + core energy.

        For a run without a governor the core terms are exactly 0.0,
        so this remains the historical LLC-only total.
        """
        return (
            self.dynamic_energy_nj + self.static_energy_nj + self.core_energy_nj
        )

    @property
    def dynamic_energy_per_kiloinstruction(self) -> float:
        """Dynamic energy rate (nJ per 1000 instructions of work).

        Schemes redistribute slowdowns differently, so runs end at
        different times and with different amounts of wrap-around
        execution; dividing by the work done inside the energy window
        makes the comparison the paper's (equal work per application).
        """
        if self.window_instructions == 0:
            return 0.0
        return self.dynamic_energy_nj / self.window_instructions * 1000.0

    @property
    def static_power_nw(self) -> float:
        """Static leakage *power* (nJ/cycle x 1e.. reported as nJ/kcycle).

        The paper's Figures 7/10 show Unmanaged, Fair Share and UCP at
        exactly 1.0 — static energy there is a power ratio (fraction
        of the cache powered), not an integral over scheme-dependent
        run lengths.  We report nJ per kilo-cycle.
        """
        if self.window_cycles == 0:
            return 0.0
        return self.static_energy_nj / self.window_cycles * 1000.0

    def ipcs(self) -> list[float]:
        """Per-core IPCs in core order."""
        return [core.ipc for core in self.cores]

    def mean_transition_cycles(self) -> float:
        """Average cycles to complete a way transfer (Figure 15)."""
        durations = self.policy_stats.transition_durations
        if not durations:
            return 0.0
        return sum(durations) / len(durations)

    def transition_cycles_lower_bound(self) -> float:
        """Mean transfer time counting unfinished transfers at their
        current age — a lower bound used when (as with UCP at small
        scale) most migrations outlive the measurement window."""
        samples = (
            self.policy_stats.transition_durations
            + self.policy_stats.pending_transition_ages
        )
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def takeover_event_fractions(self) -> dict[str, float]:
        """Normalised takeover-event mix (Figure 14)."""
        events = self.policy_stats.takeover_events
        total = sum(events.values())
        if total == 0:
            return {key: 0.0 for key in events}
        return {key: value / total for key, value in events.items()}

    # ------------------------------------------------------------------
    # Timeline views (scenario runs) — thin delegates over the series
    # helpers in :mod:`repro.scenarios.timeline`
    # ------------------------------------------------------------------
    def powered_ways_series(self) -> list[tuple[int, int]]:
        """``(cycle, powered_ways)`` pairs from the recorded timeline."""
        return timeline_helpers.powered_ways_series(self.timeline)

    def min_powered_ways(self) -> int:
        """Smallest powered-way count the timeline observed."""
        return timeline_helpers.min_powered_ways(self.timeline)

    def timeline_events(self) -> list[TimelineSample]:
        """Samples recorded because a schedule event fired."""
        return timeline_helpers.samples_with_events(self.timeline)

    def frequency_series(self) -> list[tuple[int, tuple[int, ...]]]:
        """``(cycle, per-core MHz)`` pairs from the recorded timeline
        (DVFS runs; empty without a governor)."""
        return timeline_helpers.frequency_series(self.timeline)

    def voltage_series(self) -> list[tuple[int, tuple[int, ...]]]:
        """``(cycle, per-core mV)`` pairs from the recorded timeline."""
        return timeline_helpers.voltage_series(self.timeline)
