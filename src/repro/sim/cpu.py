"""Per-core execution state for the trace-driven timing model.

The paper simulates a 4-wide out-of-order core; for LLC-partitioning
studies what matters is how instruction throughput responds to LLC
hit/miss latency, so we use the standard trace-driven proxy: non-
memory instructions retire at the issue width, memory references pay
the hierarchy latency and block (misses are not overlapped — this
exaggerates memory sensitivity uniformly across schemes, preserving
every normalised comparison; see README.md, "Scaling fidelity").

A core whose trace is exhausted wraps around and keeps running — the
paper keeps finished applications executing "to keep contending for
cache resources" — but its performance counters freeze at the target
reference count.

The reference stream is held in ``array``-backed columns (``gaps``,
``addresses``, ``writes``) shared with or derived from the
:class:`~repro.workloads.trace.Trace`, so the simulator's inner loop
indexes flat machine-word arrays instead of lists of boxed objects.
"""

from __future__ import annotations

from array import array

from repro.workloads.trace import Trace

#: address-space offset between cores (line-address bits)
CORE_ADDRESS_SPACE_BITS = 40


class CoreState:
    """Mutable execution state of one simulated core."""

    __slots__ = (
        "core_id",
        "benchmark",
        "gaps",
        "addresses",
        "writes",
        "warm_lines",
        "length",
        "position",
        "time",
        "instructions",
        "refs_done",
        "instr_base",
        "cycle_base",
        "frozen_instructions",
        "frozen_cycles",
        "window_closed",
        "window_open",
        "active",
        "departed",
        "l1_sets",
    )

    def __init__(self, core_id: int, trace: Trace | None) -> None:
        self.core_id = core_id
        self.position = 0
        self.time = 0
        self.instructions = 0
        self.refs_done = 0
        self.instr_base = 0
        self.cycle_base = 0
        self.frozen_instructions = 0
        self.frozen_cycles = 0
        self.window_closed = False
        #: whether the measurement window has opened (end of this
        #: core's warmup) — per core so late arrivals measure too
        self.window_open = False
        #: whether the core is currently executing (scenario engine)
        self.active = True
        #: whether the core has departed for good
        self.departed = False
        #: the core's private L1 sets, bound by the simulator so the
        #: inner loop reaches them in one attribute load
        self.l1_sets: list | None = None
        if trace is None:
            # An absent slot (scenario engine): never executes, but
            # keeps CoreResult/RunResult shapes uniform.
            self.benchmark = "(absent)"
            self.gaps = array("q")
            self.addresses = array("q")
            self.writes = array("b")
            self.warm_lines = array("q")
            self.length = 0
            self.active = False
        else:
            self.load_trace(trace)

    def load_trace(self, trace: Trace) -> None:
        """Bind (or rebind, on a phase change) the reference stream.

        Applies the core's private address-space offset and restarts
        the stream at position 0; execution counters keep running.
        """
        offset = (self.core_id + 1) << CORE_ADDRESS_SPACE_BITS
        self.benchmark = trace.name
        self.gaps = trace.gaps
        self.addresses, self.warm_lines = trace.for_core(offset)
        self.writes = trace.writes
        self.length = len(trace.line_addresses)
        self.position = 0

    @property
    def finished(self) -> bool:
        """Whether the measurement window for this core has closed."""
        return self.window_closed

    def start_measurement(self) -> None:
        """Reset the measured window (end of this core's warmup)."""
        self.instr_base = self.instructions
        self.cycle_base = self.time
        self.window_open = True

    def freeze(self) -> None:
        """Capture the measured window at the target reference count."""
        self.frozen_instructions = self.instructions - self.instr_base
        self.frozen_cycles = self.time - self.cycle_base
        self.window_closed = True
