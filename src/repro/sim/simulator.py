"""The multi-core, trace-driven simulation loop.

Cores are interleaved in global-time order (the core with the
smallest local clock executes its next reference), which keeps the
shared-LLC interaction faithful without an event queue.  Every
``epoch_cycles`` of global time the installed partitioning policy
makes a decision, exactly like the paper's 5M-cycle phase interval.

Measurement protocol (Section 3.2 of the paper, scaled): after a
warmup of ``warmup_refs`` references per core, all statistics reset;
each core's IPC window closes at ``refs_per_core`` references; cores
that finish keep running (wrapping their trace) so the others still
contend; the run ends when every core has closed its window.  Energy
integrates from the end of warmup to the end of the run under the
same rules for every scheme.

Scenario engine.  Every run executes a
:class:`~repro.scenarios.model.Scenario` — a timed schedule of core
arrivals, departures and phase changes.  The classic fixed-workload
run is the degenerate static scenario (all cores arrive at cycle 0,
nothing else happens) and routes through exactly the same loop; the
golden-equivalence suite pins it bit-exact against the seed engine.
Dynamic schedules interleave their events with the epoch boundaries
in timestamp order: an arriving core is warmed and scheduled from its
arrival cycle, a departing core freezes its measurement window and
the policy is told to release its ways
(:meth:`~repro.partitioning.base.BaseSharedCachePolicy.on_core_idle`),
and a phase change swaps the core's reference stream in place.
Dynamic runs additionally record a per-epoch/per-event
:class:`~repro.scenarios.timeline.TimelineSample` series.

DVFS.  A run may carry a :class:`~repro.dvfs.governors.GovernorSpec`:
each core then executes at a discrete operating point from the
machine's :class:`~repro.dvfs.model.VFTable`, chosen per epoch by the
governor (after the partitioning decision, so the two controllers
cooperate).  Core-clock work — issue gaps and L1 hits — stretches
with the core's cycle time while the shared LLC and memory stay on
the nominal clock, and per-interval core energy (V² dynamic,
V-scaled leakage) is charged through
:class:`~repro.dvfs.state.DvfsState` at every monotone boundary.
Without a governor the DVFS state is never allocated and the loop
executes the historical arithmetic bit-for-bit (pinned by the golden
suite).

Hot-path notes.  ``run`` is written for throughput and is
allocation-free per reference: the next core comes from a two-way
compare (2 cores), a plain read (1 core) or a heap (3+; always a heap
when the schedule is dynamic, since membership changes mid-run); the
L1 lookup is inlined (a ``tag_map`` dict probe plus a stamp store on a
hit — the overwhelmingly common case never enters another frame); L1
misses take one call into :meth:`_l1_miss`, which drives the LLC
policy's ``access_fast`` and performs the L1 fill inline.  The same
state is reachable through :meth:`CacheHierarchy.access` for tests
and API users — both paths mutate identical structures in the same
order, so they are interchangeable mid-run.
"""

from __future__ import annotations

from heapq import heapify, heapreplace
from typing import Callable

from repro.cache.cache_set import NO_TAG
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.memory import MainMemory
from repro.cache.set_associative import SetAssociativeCache
from repro.dvfs.governors import GovernorSpec
from repro.dvfs.state import DvfsState
from repro.energy.accounting import EnergyAccounting
from repro.energy.cacti import CactiEnergyModel
from repro.monitor.sampling import SetSampler
from repro.monitor.umon import UtilityMonitor
from repro.obs import builtin as obs_metrics
from repro.obs.metrics import metrics_enabled
from repro.obs.trace import recorder as obs_recorder
from repro.partitioning.base import PolicyStats
from repro.partitioning.registry import PolicySpec, build_policy
from repro.scenarios.model import ARRIVE, DEPART, PHASE, Scenario, ScenarioEvent
from repro.scenarios.timeline import TimelineSample
from repro.sim.config import SystemConfig
from repro.sim.cpu import CoreState
from repro.sim.stats import CoreResult, RunResult
from repro.workloads.trace import Trace

#: sentinel "no more events" cycle (far beyond any simulated time)
_NEVER = 1 << 62


class CMPSimulator:
    """One complete simulation: a system config + a schedule + a policy."""

    def __init__(
        self,
        config: SystemConfig,
        traces: list[Trace | None],
        policy_name: str | PolicySpec,
        cpe_profiles: list[list] | None = None,
        collect_curves: bool = False,
        scenario: Scenario | None = None,
        phase_traces: dict[str, Trace] | None = None,
        collect_timeline: bool | None = None,
        governor: GovernorSpec | str | None = None,
    ) -> None:
        if len(traces) != config.n_cores:
            raise ValueError(
                f"{config.n_cores} cores need {config.n_cores} traces, "
                f"got {len(traces)}"
            )
        if scenario is None:
            scenario = Scenario.static([trace.name for trace in traces])
        else:
            scenario.validate(config.n_cores)
        self.config = config
        self.scenario = scenario
        self._arrival_events: list[ScenarioEvent | None] = [
            scenario.arrival_of(core) for core in range(config.n_cores)
        ]
        self._check_traces(traces, phase_traces or {}, scenario)
        self._phase_traces = phase_traces or {}
        self.cores = [CoreState(i, trace) for i, trace in enumerate(traces)]
        for core, arrival in zip(self.cores, self._arrival_events):
            core.active = arrival is not None and arrival.at_cycle == 0
        self._pending_events = scenario.dynamic_events()
        #: whether the schedule changes the machine at/after cycle 0
        self._scenario_dynamic = bool(self._pending_events) or any(
            not core.active for core in self.cores
        )
        #: per-core V/f machinery; None = nominal-frequency machine
        #: (the historical model, bit-identical by construction)
        self.dvfs: DvfsState | None = (
            DvfsState(governor, config) if governor is not None else None
        )
        if collect_timeline is None:
            # DVFS runs always record a timeline: the per-epoch
            # frequency/voltage series is the result's whole point.
            collect_timeline = self._scenario_dynamic or self.dvfs is not None
        self._timeline: list[TimelineSample] | None = (
            [] if collect_timeline else None
        )
        self._measuring = False
        self._warmup = 0
        #: engine-invariant run diagnostics (populated only when the
        #: trace recorder is live; stays empty — and unserialized — by
        #: default so golden fixtures are untouched)
        self._diagnostics: dict = {}
        self.collect_curves = collect_curves

        self.cache = SetAssociativeCache(config.l2)
        self.memory = MainMemory(
            latency=config.mem_latency,
            n_banks=config.mem_banks,
            bank_busy=config.mem_bank_busy,
        )
        self.memory.flush_bucket_cycles = config.flush_bucket_cycles
        model = CactiEnergyModel(config.l2, config.n_cores)
        self.energy = EnergyAccounting(model)
        self.stats = PolicyStats(config.n_cores, config.flush_bucket_cycles)

        spec = (
            policy_name
            if isinstance(policy_name, PolicySpec)
            else PolicySpec(policy_name)
        )
        self.policy_spec = spec
        monitors: list[UtilityMonitor] = []
        if spec.info.needs_monitors or collect_curves:
            monitors = [
                UtilityMonitor(
                    config.l2.ways,
                    SetSampler(config.l2.num_sets, config.umon_interval),
                    decay=config.umon_decay,
                )
                for _ in range(config.n_cores)
            ]
        self.monitors = monitors
        self.policy = build_policy(
            spec,
            self.cache,
            self.memory,
            self.energy,
            self.stats,
            monitors,
            config=config,
            profiles=cpe_profiles,
        )
        self.hierarchy = CacheHierarchy(
            config.n_cores,
            config.l1,
            config.l1_latency,
            config.l2_latency,
            self.policy,
        )
        self.epoch_curves: list[list[int]] = []
        # Inner-loop constants and per-core L1 bindings.  The counter
        # lists are zeroed in place at the end of warmup, so these
        # references stay valid for the whole run.
        l1_geometry = self.hierarchy.l1[0].geometry
        self._l1_mask = l1_geometry.set_mask
        self._l1_shift = l1_geometry.set_shift
        self._miss_latency = config.l1_latency + config.l2_latency
        self._policy_access = self.policy.access_fast
        self._l1_misses = self.hierarchy.l1_misses
        self._l1_writebacks = self.hierarchy.l1_writebacks
        for core in self.cores:
            l1 = self.hierarchy.l1[core.core_id]
            l1.ensure_cores(config.n_cores)
            core.l1_sets = l1.sets
        # Slots not present at cycle 0 (late arrivals and never-arriving
        # slots) start idle: the policy releases their share before the
        # run begins — under cooperative partitioning their ways are
        # gated from the first cycle.
        if self._scenario_dynamic:
            for core in self.cores:
                if not core.active:
                    self.policy.on_core_idle(core.core_id, 0)
                    if self.dvfs is not None:
                        self.dvfs.gate_core(core.core_id)

    @staticmethod
    def _check_traces(
        traces: list[Trace | None],
        phase_traces: dict[str, Trace],
        scenario: Scenario,
    ) -> None:
        for slot, (trace, arrival) in enumerate(
            zip(traces, (scenario.arrival_of(i) for i in range(len(traces))))
        ):
            if arrival is None:
                if trace is not None:
                    raise ValueError(
                        f"slot {slot} never arrives in scenario "
                        f"{scenario.name!r} but was given a trace"
                    )
            elif trace is None:
                raise ValueError(
                    f"slot {slot} arrives in scenario {scenario.name!r} "
                    f"but has no trace"
                )
            elif trace.name != arrival.benchmark:
                raise ValueError(
                    f"slot {slot}: trace {trace.name!r} does not match "
                    f"arrival benchmark {arrival.benchmark!r}"
                )
        for event in scenario.events:
            if event.kind == PHASE and event.benchmark not in phase_traces:
                raise ValueError(
                    f"phase event {event.describe()} has no trace; pass it "
                    f"via phase_traces (or use CMPSimulator.for_scenario)"
                )

    @classmethod
    def for_scenario(
        cls,
        config: SystemConfig,
        scenario: Scenario,
        policy_name: str | PolicySpec,
        trace_for: Callable[[str], Trace],
        cpe_profiles: list[list] | None = None,
        collect_curves: bool = False,
        collect_timeline: bool | None = None,
        governor: GovernorSpec | str | None = None,
    ) -> "CMPSimulator":
        """Build a simulator for ``scenario``, fetching traces on demand.

        ``trace_for(benchmark)`` supplies the deterministic trace for a
        benchmark name (e.g. ``ExperimentRunner.trace_for`` partially
        applied to the config).
        """
        scenario.validate(config.n_cores)
        arrivals = scenario.arrival_benchmarks(config.n_cores)
        traces = [trace_for(name) if name else None for name in arrivals]
        phase_traces = {
            event.benchmark: trace_for(event.benchmark)
            for event in scenario.events
            if event.kind == PHASE and event.benchmark is not None
        }
        return cls(
            config,
            traces,
            policy_name,
            cpe_profiles=cpe_profiles,
            collect_curves=collect_curves,
            scenario=scenario,
            phase_traces=phase_traces,
            collect_timeline=collect_timeline,
            governor=governor,
        )

    # ------------------------------------------------------------------
    def run(self, engine: str | None = None) -> RunResult:
        """Execute the run protocol and return the collected results.

        ``engine`` picks the execution backend: ``"python"`` (the
        reference scalar loop below), ``"batched"`` (numpy hit-run
        batching), ``"compiled"`` (the C kernel) or ``"auto"``/``None``
        (fastest available, overridable via ``$REPRO_ENGINE``).  Every
        backend produces a bit-identical :class:`RunResult` — the
        golden suite pins all of them against the same fixtures.
        """
        from repro.engine import BATCHED, COMPILED, resolve_engine

        name = resolve_engine(engine)
        if name == COMPILED:
            from repro.engine.compiled import run_compiled

            return run_compiled(self)
        if name == BATCHED:
            from repro.engine.batched import run_batched

            return run_batched(self)
        return self._run_python()

    # ------------------------------------------------------------------
    def _begin_run(
        self, prewarm: Callable[[], None] | None = None
    ) -> tuple[int, int, bool, int, int, list[CoreState]]:
        """Shared run prologue: warmup windows, prewarm, first epoch.

        Returns ``(target, warmup, warmed_up, unfinished, next_epoch,
        initial)``.  Every engine starts a run through here so the
        measurement protocol is defined exactly once.  ``prewarm``
        substitutes an engine's own cache-warming implementation (the
        compiled kernel warms in C); it must be traffic-equivalent to
        :meth:`_prewarm`.
        """
        config = self.config
        cores = self.cores
        target = config.refs_per_core
        warmup = min(config.warmup_refs, max(0, target - 1))
        self._warmup = warmup
        warmed_up = warmup == 0
        if warmed_up:
            # No warmup: every window is open from the start and the
            # timeline (if any) begins at cycle 0.
            for core in cores:
                core.window_open = True
            self._measuring = True
        initial = [core for core in cores if core.active]
        #: cores whose warmup gates the global statistics reset (late
        #: arrivals open their own windows but do not hold up the gate)
        self._warm_gate = initial
        unfinished = sum(
            1 for arrival in self._arrival_events if arrival is not None
        )

        (prewarm or self._prewarm)()
        # The first epoch starts after the warming traffic has drained
        # so the catch-up logic does not fire several decisions back to
        # back on sparse monitor data.
        next_epoch = (
            max((core.time for core in initial), default=0)
            + config.epoch_cycles
        )
        if warmed_up and self._timeline is not None:
            self._record_sample(0)
        rec = obs_recorder()
        if rec.enabled:
            rec.run_begin(
                policy=self.policy.name,
                scenario=self.scenario.name,
                cores=config.n_cores,
                epoch_cycles=config.epoch_cycles,
            )
        self._diagnostics = {}
        return target, warmup, warmed_up, unfinished, next_epoch, initial

    def _advance_boundary(
        self,
        now: int,
        clock: int,
        next_epoch: int,
        next_event: int,
        event_index: int,
        unfinished: int,
        warmed_up: bool,
    ) -> tuple[int, int, int, int, int, bool, bool]:
        """Process one scheduler boundary (an epoch or schedule event).

        Called when the next reference's issue instant ``now`` is at or
        past ``next_epoch``/``next_event``.  Returns the updated
        ``(clock, next_epoch, next_event, event_index, unfinished,
        warmed_up, rekey)`` loop state; ``rekey`` tells the caller its
        cached core ordering is stale (an epoch stalled the cores, or
        an event changed scheduler membership).  Shared by every
        engine so the boundary-side protocol exists exactly once.
        """
        events = self._pending_events
        n_events = len(events)
        warmup = self._warmup
        rekey = False
        if next_epoch <= next_event:
            stamp = next_epoch if next_epoch >= clock else clock
            rekey = self._run_epoch(stamp)
            clock = stamp
            next_epoch += self.config.epoch_cycles
        else:
            when = next_event
            stamp = when if when >= now else now
            if stamp < clock:
                stamp = clock
            last_power_event = self.energy.last_event_cycle
            if stamp < last_power_event:
                # An access from another core (or the flush stall it
                # charged) overran this boundary: static energy is
                # already integrated past it, so the event takes
                # effect at that later instant rather than rewinding
                # time.
                stamp = last_power_event
            if self.dvfs is not None:
                # Close the energy interval at the levels the cores
                # actually ran at before an event gates or
                # re-activates anything.
                self.dvfs.charge_to(stamp, self.cores, self.energy)
            closed = 0
            labels: list[str] = []
            while (
                event_index < n_events
                and events[event_index].at_cycle == when
            ):
                event = events[event_index]
                closed += self._apply_event(event, stamp)
                labels.append(event.describe())
                event_index += 1
            next_event = (
                events[event_index].at_cycle
                if event_index < n_events
                else _NEVER
            )
            unfinished -= closed
            clock = stamp
            stall = getattr(self.policy, "pending_stall", 0)
            if stall:
                for c in self.cores:
                    if c.active:
                        c.time += stall
                self.policy.pending_stall = 0
            if self._timeline is not None and self._measuring:
                self._record_sample(stamp, labels)
            if not warmed_up and self._warm_gate_passed(warmup):
                self._end_warmup()
                warmed_up = True
                if self.energy.window_start > clock:
                    clock = self.energy.window_start
            rekey = True
        return (
            clock, next_epoch, next_event, event_index, unfinished,
            warmed_up, rekey,
        )

    def _finish_run(self, clock: int, event_index: int) -> RunResult:
        """Shared run epilogue: leftover events, energy close, collect."""
        cores = self.cores
        events = self._pending_events
        n_events = len(events)
        dvfs = self.dvfs
        end_cycle = max(c.time for c in cores)
        if event_index < n_events:
            # Events scheduled past the last window close (only departs
            # and phases can remain — a pending arrival holds the run
            # open) are applied at the final instant rather than
            # silently dropped, so the cached artifact and the timeline
            # honestly reflect the full schedule.
            stamp = end_cycle if end_cycle >= clock else clock
            if dvfs is not None:
                dvfs.charge_to(stamp, cores, self.energy)
            labels = []
            while event_index < n_events:
                event = events[event_index]
                self._apply_event(event, stamp)
                labels.append(event.describe())
                event_index += 1
            if getattr(self.policy, "pending_stall", 0):
                # A flush burst at the final instant has no run left to
                # slow down; its energy and flush stats are recorded.
                self.policy.pending_stall = 0
            if self._timeline is not None and self._measuring:
                self._record_sample(stamp, labels)
            if stamp > end_cycle:
                end_cycle = stamp
        if dvfs is not None:
            dvfs.charge_to(end_cycle, cores, self.energy)
        self.energy.finalize(end_cycle)
        note_pending = getattr(self.policy, "note_pending", None)
        if note_pending is not None:
            note_pending(end_cycle)
        rec = obs_recorder()
        if rec.enabled:
            summary = rec.run_end(end_cycle=end_cycle)
            # Diagnostics carry only engine-invariant counts: the epoch
            # and event schedules are part of the shared run protocol,
            # so every engine (and every racing worker) serializes the
            # same bytes.  Wall-clock data stays in the trace artifact.
            self._diagnostics = {
                "epochs": summary["epochs"],
                "events": event_index,
            }
        self._record_run_metrics()
        return self._collect(end_cycle)

    def _record_run_metrics(self) -> None:
        """Fold run-end partitioning mechanics into the metric registry."""
        if not metrics_enabled():
            return
        stats = self.stats
        obs_metrics.ENGINE_RUNS.inc(policy=self.policy.name)
        for kind, count in stats.takeover_events.items():
            if count:
                obs_metrics.TAKEOVER_EVENTS.inc(count, kind=kind)
        if stats.transitions_started:
            obs_metrics.WAY_TRANSITIONS.inc(stats.transitions_started)
        if stats.transfer_flushes:
            obs_metrics.TRANSFER_FLUSHES.inc(stats.transfer_flushes)
        timeline = self._timeline or []
        gate_drops = sum(
            1
            for before, after in zip(timeline, timeline[1:])
            if after.powered_ways < before.powered_ways
        )
        if gate_drops:
            obs_metrics.POWER_GATE_DROPS.inc(gate_drops)

    # ------------------------------------------------------------------
    def _run_python(self) -> RunResult:  # repro: hot
        """The reference scalar loop (pinned by the golden suite)."""
        config = self.config
        cores = self.cores
        issue_shift = max(0, config.issue_width.bit_length() - 1)
        (
            target, warmup, warmed_up, unfinished, next_epoch, initial,
        ) = self._begin_run()

        l1_mask = self._l1_mask
        l1_shift = self._l1_shift
        l1_latency = self.hierarchy.l1_latency
        l1_hits = self.hierarchy.l1_hits
        l1_misses = self._l1_misses
        l1_writebacks = self._l1_writebacks
        policy_access = self._policy_access
        miss_latency = self._miss_latency
        # DVFS bindings: with a governor, core-clock work is scaled by
        # the per-core timing rows and LLC+memory stall is accumulated
        # for the governors' slowdown model.  Without one these stay
        # None and every expression below is the historical arithmetic.
        dvfs = self.dvfs
        dvfs_entries = dvfs.entries if dvfs is not None else None
        dvfs_stall = dvfs.stall if dvfs is not None else None
        l2_latency = self.config.l2_latency

        events = self._pending_events
        event_index = 0
        next_event = events[0].at_cycle if events else _NEVER
        # Monotone boundary clock: events take effect at the first
        # scheduler step at or after their scheduled cycle, and no
        # boundary is ever stamped earlier than one already applied
        # (time never rewinds, keeping the energy integration and the
        # timeline strictly ordered even for schedules whose cycles
        # land inside the prewarm era).
        clock = 0

        # Scheduler: two-way compare for the common 2-core geometry, a
        # heap keyed on (time, core_id) for 3+ cores (same tie-break
        # as min() over the core list: earliest time, lowest id).  A
        # dynamic schedule always uses the heap — membership changes
        # whenever a core arrives or departs.
        core_a = core_b = None
        heap = None
        if events:
            heap = [(core.time, core.core_id) for core in initial]
            heapify(heap)
        else:
            n_scheduled = len(initial)
            core_a = initial[0] if n_scheduled else None
            core_b = initial[1] if n_scheduled == 2 else None
            if n_scheduled > 2:
                heap = [(core.time, core.core_id) for core in initial]
                heapify(heap)

        while unfinished:
            if core_b is not None:
                core = core_a if core_a.time <= core_b.time else core_b
                now = core.time
            elif heap is None:
                core = core_a
                now = core.time
            elif heap:
                now, core_id = heap[0]
                core = cores[core_id]
            else:
                # No core is executing; jump to the next boundary (an
                # epoch or the arrival that will repopulate the heap).
                core = None
                now = next_event if next_event < next_epoch else next_epoch

            if now >= next_epoch or now >= next_event:
                (
                    clock, next_epoch, next_event, event_index,
                    unfinished, warmed_up, rekey,
                ) = self._advance_boundary(
                    now, clock, next_epoch, next_event, event_index,
                    unfinished, warmed_up,
                )
                if rekey and heap is not None:
                    # The boundary stalled cores or changed scheduler
                    # membership; re-key the heap.
                    heap = [(c.time, c.core_id) for c in cores if c.active]
                    heapify(heap)
                continue

            position = core.position
            gap = core.gaps[position]
            address = core.addresses[position]
            is_write = core.writes[position]
            if dvfs_entries is None:
                issue_time = now + (gap >> issue_shift)
                hit_latency = l1_latency
                miss_base = miss_latency
            else:
                # Core-clock work stretches by num/den; the LLC keeps
                # its own clock (the l2 term inside miss_base and the
                # memory latency below are nominal cycles).
                entry = dvfs_entries[core.core_id]
                issue_time = now + (gap >> issue_shift) * entry[0] // entry[1]
                hit_latency = entry[2]
                miss_base = entry[3]

            # Inlined L1 lookup — the hit path touches three integers
            # and returns to the scheduler without another frame.
            set_index = address & l1_mask
            tag = address >> l1_shift
            cset = core.l1_sets[set_index]
            way = cset.tag_map.get(tag, -1)
            if way >= 0:
                cset.stamp[way] = cset.clock
                cset.clock += 1
                if is_write:
                    cset.dirty[way] = 1
                l1_hits[core.core_id] += 1
                core.time = issue_time + hit_latency
            else:
                # Inlined L1 miss path — a verbatim copy of _l1_miss
                # (worth one frame per miss at this call frequency).
                # Any edit must be applied to BOTH copies; the golden
                # suite (tests/golden/) catches divergence, since
                # _prewarm drives _l1_miss and this loop drives the
                # inline copy within the same pinned runs.
                core_id = core.core_id
                l1_misses[core_id] += 1
                memory_latency = policy_access(core_id, address, False, issue_time)
                tags = cset.tags
                victim_way = -1
                if cset.valid_count != cset.ways:
                    for candidate in range(cset.ways):
                        if tags[candidate] == NO_TAG:
                            victim_way = candidate
                            break
                if victim_way < 0:
                    stamp = cset.stamp
                    victim_way = stamp.index(min(stamp))
                old_tag = tags[victim_way]
                tag_map = cset.tag_map
                evicted_dirty = 0
                if old_tag != NO_TAG:
                    evicted_dirty = cset.dirty[victim_way]
                    if tag_map.get(old_tag) == victim_way:
                        del tag_map[old_tag]
                else:
                    cset.valid_count += 1
                    self.hierarchy.l1[core_id].core_occupancy[core_id] += 1
                tags[victim_way] = tag
                tag_map[tag] = victim_way
                cset.dirty[victim_way] = 1 if is_write else 0
                cset.owner[victim_way] = core_id
                cset.stamp[victim_way] = cset.clock
                cset.clock += 1
                if evicted_dirty:
                    l1_writebacks[core_id] += 1
                    policy_access(
                        core_id, (old_tag << l1_shift) | set_index, True, issue_time
                    )
                core.time = issue_time + miss_base + memory_latency
                if dvfs_stall is not None:
                    dvfs_stall[core_id] += l2_latency + memory_latency
            core.instructions += gap + 1
            position += 1
            core.position = 0 if position == core.length else position
            core.refs_done += 1
            if heap is not None:
                heapreplace(heap, (core.time, core.core_id))

            if core.refs_done == warmup and not core.window_open:
                # Each core's IPC window opens at its own warmup point
                # so every scheme measures exactly the same
                # (target - warmup) references per core; the global
                # statistics reset once the last gating core gets there.
                core.start_measurement()
                if not warmed_up and self._warm_gate_passed(warmup):
                    self._end_warmup()
                    warmed_up = True
                    if self.energy.window_start > clock:
                        clock = self.energy.window_start
            if core.refs_done == target and not core.window_closed:
                core.freeze()
                unfinished -= 1

        return self._finish_run(clock, event_index)

    # ------------------------------------------------------------------
    def _apply_event(self, event: ScenarioEvent, when: int) -> int:
        """Apply one schedule event; returns windows closed (0 or 1)."""
        core = self.cores[event.core]
        kind = event.kind
        if kind == ARRIVE:
            # Grant the core cache capacity *before* its warming traffic
            # reaches the LLC (an arriving core must be able to fill).
            self.policy.on_core_active(event.core, when)
            core.active = True
            core.time = when
            if self.dvfs is not None:
                # The arrival executes at the governor-chosen operating
                # point from its very first (warming) access.
                self.dvfs.activate_core(event.core, when, core.instructions)
            self._warm_core(core)
            if self._warmup == 0:
                core.start_measurement()
            return 0
        if kind == DEPART:
            closed = 0
            if not core.window_closed:
                if core.window_open:
                    core.freeze()
                else:
                    # Departed during warmup: no measured window, and
                    # none of the core's work counts toward the
                    # window_instructions energy denominator.
                    core.instr_base = core.instructions
                    core.window_closed = True
                closed = 1
            core.active = False
            core.departed = True
            self.policy.on_core_idle(event.core, when)
            if self.dvfs is not None:
                # The energy interval up to ``when`` was already closed
                # at the event boundary; from here the core's V/f is
                # gated and it contributes zero core energy.
                self.dvfs.gate_core(event.core)
            return closed
        # PHASE: swap the reference stream in place; counters continue.
        trace = self._phase_traces[event.benchmark]
        core.load_trace(trace)
        return 0

    def _warm_gate_passed(self, warmup: int) -> bool:
        """Whether every gating core finished (or left) its warmup."""
        return all(
            core.refs_done >= warmup or core.departed
            for core in self._warm_gate
        )

    def _record_sample(self, cycle: int, labels: list[str] | tuple = ()) -> None:
        """Append one timeline observation (never mutates sim state)."""
        policy = self.policy
        dvfs = self.dvfs
        self._timeline.append(
            TimelineSample(
                cycle=cycle,
                active_cores=tuple(
                    core.core_id for core in self.cores if core.active
                ),
                allocations=tuple(policy.way_allocations()),
                powered_ways=policy.active_ways(),
                static_energy_nj=self.energy.static_nj_at(cycle),
                dynamic_energy_nj=self.energy.dynamic_nj,
                events=tuple(labels),
                frequencies_mhz=(
                    dvfs.frequencies_mhz() if dvfs is not None else ()
                ),
                voltages_mv=dvfs.voltages_mv() if dvfs is not None else (),
                core_energy_nj=(
                    self.energy.core_energy_nj if dvfs is not None else 0.0
                ),
            )
        )

    # ------------------------------------------------------------------
    # repro: hot
    def _l1_miss(
        self,
        core_id: int,
        address: int,
        is_write: int,
        now: int,
        cset,
        set_index: int,
        tag: int,
    ) -> int:
        """L1 miss path: LLC fetch, inlined L1 fill, victim writeback.

        Mirrors :meth:`CacheHierarchy.access`'s miss handling (fetch
        before fill, write the dirty victim through the LLC after) and
        :meth:`SetAssociativeCache.fill`'s state updates — keep the
        three in sync.
        """
        self._l1_misses[core_id] += 1
        policy_access = self._policy_access
        # Fetch the line from the shared LLC (write-allocate).
        memory_latency = policy_access(core_id, address, False, now)

        # Choose the L1 victim (plain LRU over the full set).
        tags = cset.tags
        victim_way = -1
        if cset.valid_count != cset.ways:
            for candidate in range(cset.ways):
                if tags[candidate] == NO_TAG:
                    victim_way = candidate
                    break
        if victim_way < 0:
            stamp = cset.stamp
            victim_way = stamp.index(min(stamp))

        # Inlined L1 fill.
        old_tag = tags[victim_way]
        tag_map = cset.tag_map
        evicted_dirty = 0
        if old_tag != NO_TAG:
            evicted_dirty = cset.dirty[victim_way]
            if tag_map.get(old_tag) == victim_way:
                del tag_map[old_tag]
        else:
            cset.valid_count += 1
            self.hierarchy.l1[core_id].core_occupancy[core_id] += 1
        tags[victim_way] = tag
        tag_map[tag] = victim_way
        cset.dirty[victim_way] = 1 if is_write else 0
        cset.owner[victim_way] = core_id
        cset.stamp[victim_way] = cset.clock
        cset.clock += 1

        if evicted_dirty:
            victim_address = (old_tag << self._l1_shift) | set_index
            self._l1_writebacks[core_id] += 1
            policy_access(core_id, victim_address, True, now)
        dvfs = self.dvfs
        if dvfs is None:
            return self._miss_latency + memory_latency
        entry = dvfs.entries[core_id]
        dvfs.stall[core_id] += self.config.l2_latency + memory_latency
        return entry[3] + memory_latency

    # ------------------------------------------------------------------
    def _prewarm(self) -> None:
        """Pre-touch each core's resident working set (cache warming).

        Mirrors the paper's explicit warmup after fast-forward: every
        ring/hot line is accessed once through the real hierarchy,
        interleaved across cores, before the measured window.  The
        traffic ages normally and everything it touches is discarded
        by the warmup statistics reset.  Only cores present at cycle 0
        warm here; a late arrival warms at its arrival cycle
        (:meth:`_warm_core`).

        Cores advance through per-core cursors and drained cores drop
        out of the sweep list, so each round only visits cores that
        still have lines to warm (the previous implementation rescanned
        every core per warmed line).
        """
        l1_mask = self._l1_mask
        l1_shift = self._l1_shift
        l1_hits = self.hierarchy.l1_hits
        miss = self._l1_miss
        warm_one = self._warm_access
        # [core, cursor, lines, length, hit_cost] per core with warming
        # to do (the hit cost is the core's scaled L1 latency when the
        # run carries a governor).
        active = [
            [
                core, 0, core.warm_lines, len(core.warm_lines),
                self._l1_hit_cost(core.core_id),
            ]
            for core in self.cores
            if core.active and len(core.warm_lines)
        ]
        while active:
            drained = False
            for entry in active:
                cursor = entry[1]
                warm_one(
                    entry[0], entry[2][cursor],
                    l1_mask, l1_shift, entry[4], l1_hits, miss,
                )
                cursor += 1
                entry[1] = cursor
                if cursor == entry[3]:
                    drained = True
            if drained:
                active = [entry for entry in active if entry[1] < entry[3]]

    def _l1_hit_cost(self, core_id: int) -> int:
        """The L1 hit latency of ``core_id`` at its current operating
        point (the nominal latency without a governor)."""
        if self.dvfs is None:
            return self.hierarchy.l1_latency
        return self.dvfs.entries[core_id][2]

    @staticmethod
    def _warm_access(
        core: CoreState,
        address: int,
        l1_mask: int,
        l1_shift: int,
        l1_latency: int,
        l1_hits: list[int],
        miss,
    ) -> None:
        """One warm touch of ``address`` — the single shared copy of
        the warming L1 access sequence (callers pass the bound loop
        constants so per-line cost stays flat)."""
        now = core.time
        cset = core.l1_sets[address & l1_mask]
        way = cset.tag_map.get(address >> l1_shift, -1)
        if way >= 0:
            cset.stamp[way] = cset.clock
            cset.clock += 1
            l1_hits[core.core_id] += 1
            core.time = now + l1_latency
        else:
            core.time = now + miss(
                core.core_id, address, False, now,
                cset, address & l1_mask, address >> l1_shift,
            )

    def _warm_core(self, core: CoreState) -> None:
        """Warm one late-arriving core's resident working set.

        The same per-line traffic as :meth:`_prewarm`, but for a single
        core starting at its arrival cycle.  The warming accesses are
        real LLC traffic (the incoming application faults its working
        set in), so they are charged to the measured window like any
        other post-warmup work.
        """
        warm_one = self._warm_access
        l1_mask = self._l1_mask
        l1_shift = self._l1_shift
        hit_cost = self._l1_hit_cost(core.core_id)
        l1_hits = self.hierarchy.l1_hits
        miss = self._l1_miss
        for address in core.warm_lines:
            warm_one(core, address, l1_mask, l1_shift, hit_cost, l1_hits, miss)

    def _run_epoch(self, now: int) -> bool:
        """Partitioning decision at a global epoch boundary.

        Returns True when the decision stalled the cores (so the
        scheduler knows its cached orderings are stale).
        """
        if self.collect_curves and self.monitors:
            self.epoch_curves.append(self.monitors[0].miss_curve())
        if self.dvfs is not None:
            # Close the interval at the levels it actually ran at,
            # *before* the governor moves anything.
            self.dvfs.charge_to(now, self.cores, self.energy)
        self.policy.epoch(now)
        if self.dvfs is not None and self._measuring:
            # The governor decides after the partitioning decision:
            # next epoch's stall telemetry reflects the allocation the
            # partitioner just made, which is the coordination loop.
            # It stays parked at the initial (nominal) point until the
            # measured window opens: warmup is a miss storm that makes
            # every core look memory-bound, and a decision taken on
            # that telemetry would start the window at the deepest
            # level regardless of the workload.
            self.dvfs.epoch(now, self.cores, self.policy.way_allocations())
        if self._timeline is not None and self._measuring:
            self._record_sample(now)
        rec = obs_recorder()
        if rec.enabled:
            rec.epoch(
                now,
                measuring=self._measuring,
                static_energy_nj=self.energy.static_nj_at(now),
                dynamic_energy_nj=self.energy.dynamic_nj,
                powered_ways=self.policy.active_ways(),
            )
        if metrics_enabled():
            obs_metrics.ENGINE_EPOCHS.inc()
        stall = getattr(self.policy, "pending_stall", 0)
        if stall:
            for core in self.cores:
                if core.active:
                    core.time += stall
            self.policy.pending_stall = 0
            return True
        return False

    def _end_warmup(self) -> None:
        """Discard warmup statistics; the measured window starts here."""
        self.stats.reset_counters()
        self.memory.reset_statistics()
        # The energy window restarts at the global minimum time: every
        # later policy event (epochs, transitions) happens at or after
        # it, keeping the static integration monotonic.
        now = min(
            (core.time for core in self.cores if core.active),
            default=max(core.time for core in self.cores),
        )
        self.energy.reset_window(now)
        if self.dvfs is not None:
            self.dvfs.reset_window(now, self.cores)
        # Zero the L1 counters in place: the run loop holds direct
        # references to these lists.
        hierarchy = self.hierarchy
        for core_id in range(self.config.n_cores):
            hierarchy.l1_hits[core_id] = 0
            hierarchy.l1_misses[core_id] = 0
            hierarchy.l1_writebacks[core_id] = 0
        self._measuring = True
        if self._timeline is not None:
            self._record_sample(now)

    def _collect(self, end_cycle: int) -> RunResult:
        if self.collect_curves and self.monitors:
            # Guarantee at least one curve even for sub-epoch runs, and
            # capture the tail epoch's behaviour.
            self.epoch_curves.append(self.monitors[0].miss_curve())
        if self._timeline is not None and self._measuring:
            self._record_sample(end_cycle)
        stats = self.stats
        core_results = [
            CoreResult(
                benchmark=core.benchmark,
                instructions=core.frozen_instructions,
                cycles=core.frozen_cycles,
                llc_demand_accesses=stats.demand_accesses[core.core_id],
                llc_demand_misses=stats.demand_misses(core.core_id),
            )
            for core in self.cores
        ]
        window_instructions = sum(
            core.instructions - core.instr_base for core in self.cores
        )
        window_cycles = end_cycle - self.energy.window_start
        return RunResult(
            policy=self.policy.name,
            cores=core_results,
            dynamic_energy_nj=self.energy.dynamic_nj,
            static_energy_nj=self.energy.static_nj,
            average_active_ways=self.energy.average_active_ways,
            average_ways_probed=stats.average_ways_probed(),
            end_cycle=end_cycle,
            memory_reads=self.memory.reads,
            memory_writebacks=self.memory.writebacks,
            policy_stats=stats,
            window_instructions=window_instructions,
            window_cycles=window_cycles,
            epoch_curves=self.epoch_curves,
            scenario=self.scenario.name,
            timeline=self._timeline if self._timeline is not None else [],
            governor=(
                self.dvfs.spec.name if self.dvfs is not None else None
            ),
            core_dynamic_energy_nj=self.energy.core_dynamic_nj,
            core_static_energy_nj=self.energy.core_static_nj,
            diagnostics=self._diagnostics,
        )
