"""The multi-core, trace-driven simulation loop.

Cores are interleaved in global-time order (the core with the
smallest local clock executes its next reference), which keeps the
shared-LLC interaction faithful without an event queue.  Every
``epoch_cycles`` of global time the installed partitioning policy
makes a decision, exactly like the paper's 5M-cycle phase interval.

Measurement protocol (Section 3.2 of the paper, scaled): after a
warmup of ``warmup_refs`` references per core, all statistics reset;
each core's IPC window closes at ``refs_per_core`` references; cores
that finish keep running (wrapping their trace) so the others still
contend; the run ends when every core has closed its window.  Energy
integrates from the end of warmup to the end of the run under the
same rules for every scheme.
"""

from __future__ import annotations

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.memory import MainMemory
from repro.cache.set_associative import SetAssociativeCache
from repro.energy.accounting import EnergyAccounting
from repro.energy.cacti import CactiEnergyModel
from repro.monitor.sampling import SetSampler
from repro.monitor.umon import UtilityMonitor
from repro.partitioning.base import PolicyStats
from repro.partitioning.registry import create_policy
from repro.sim.config import SystemConfig
from repro.sim.cpu import CoreState
from repro.sim.stats import CoreResult, RunResult
from repro.workloads.trace import Trace


class CMPSimulator:
    """One complete simulation: a system config + traces + a policy."""

    def __init__(
        self,
        config: SystemConfig,
        traces: list[Trace],
        policy_name: str,
        cpe_profiles: list[list] | None = None,
        collect_curves: bool = False,
    ) -> None:
        if len(traces) != config.n_cores:
            raise ValueError(
                f"{config.n_cores} cores need {config.n_cores} traces, "
                f"got {len(traces)}"
            )
        self.config = config
        self.cores = [CoreState(i, trace) for i, trace in enumerate(traces)]
        self.collect_curves = collect_curves

        self.cache = SetAssociativeCache(config.l2)
        self.memory = MainMemory(
            latency=config.mem_latency,
            n_banks=config.mem_banks,
            bank_busy=config.mem_bank_busy,
        )
        self.memory.flush_bucket_cycles = config.flush_bucket_cycles
        model = CactiEnergyModel(config.l2, config.n_cores)
        self.energy = EnergyAccounting(model)
        self.stats = PolicyStats(config.n_cores, config.flush_bucket_cycles)

        policy_cls_needs_monitors = policy_name in ("ucp", "cooperative")
        monitors: list[UtilityMonitor] = []
        if policy_cls_needs_monitors or collect_curves:
            monitors = [
                UtilityMonitor(
                    config.l2.ways,
                    SetSampler(config.l2.num_sets, config.umon_interval),
                    decay=config.umon_decay,
                )
                for _ in range(config.n_cores)
            ]
        self.monitors = monitors
        self.policy = create_policy(
            policy_name,
            self.cache,
            self.memory,
            self.energy,
            self.stats,
            monitors,
            threshold=config.threshold,
            cpe_profiles=cpe_profiles,
            seed=config.seed,
        )
        self.hierarchy = CacheHierarchy(
            config.n_cores,
            config.l1,
            config.l1_latency,
            config.l2_latency,
            self.policy,
        )
        self.epoch_curves: list[list[int]] = []

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the run protocol and return the collected results."""
        config = self.config
        cores = self.cores
        hierarchy = self.hierarchy
        issue_shift = max(0, config.issue_width.bit_length() - 1)
        target = config.refs_per_core
        warmup = min(config.warmup_refs, max(0, target - 1))
        warmed_up = warmup == 0
        unfinished = len(cores)

        self._prewarm()
        # The first epoch starts after the warming traffic has drained
        # so the catch-up logic does not fire several decisions back to
        # back on sparse monitor data.
        next_epoch = max(core.time for core in cores) + config.epoch_cycles

        while unfinished:
            core = min(cores, key=_core_time)
            now = core.time

            if now >= next_epoch:
                self._run_epoch(next_epoch)
                next_epoch += config.epoch_cycles
                continue

            position = core.position
            gap = core.gaps[position]
            address = core.addresses[position]
            is_write = core.writes[position]
            issue_time = now + (gap >> issue_shift)
            access = hierarchy.access(core.core_id, address, is_write, issue_time)
            core.time = issue_time + access.latency
            core.instructions += gap + 1
            position += 1
            core.position = 0 if position == core.length else position
            core.refs_done += 1

            if not warmed_up and core.refs_done == warmup:
                # Each core's IPC window opens at its own warmup point
                # so every scheme measures exactly the same
                # (target - warmup) references per core; the global
                # statistics reset once the last core gets there.
                core.start_measurement()
                if all(c.refs_done >= warmup for c in cores):
                    self._end_warmup()
                    warmed_up = True
            if core.refs_done == target and not core.finished:
                core.freeze()
                unfinished -= 1

        end_cycle = max(c.time for c in cores)
        self.energy.finalize(end_cycle)
        note_pending = getattr(self.policy, "note_pending", None)
        if note_pending is not None:
            note_pending(end_cycle)
        return self._collect(end_cycle)

    # ------------------------------------------------------------------
    def _prewarm(self) -> None:
        """Pre-touch each core's resident working set (cache warming).

        Mirrors the paper's explicit warmup after fast-forward: every
        ring/hot line is accessed once through the real hierarchy,
        interleaved across cores, before the measured window.  The
        traffic ages normally and everything it touches is discarded
        by the warmup statistics reset.
        """
        hierarchy = self.hierarchy
        cores = self.cores
        positions = [0] * len(cores)
        remaining = sum(len(core.warm_lines) for core in cores)
        while remaining:
            for core in cores:
                position = positions[core.core_id]
                if position >= len(core.warm_lines):
                    continue
                access = hierarchy.access(
                    core.core_id, core.warm_lines[position], False, core.time
                )
                core.time += access.latency
                positions[core.core_id] = position + 1
                remaining -= 1

    def _run_epoch(self, now: int) -> None:
        """Partitioning decision at a global epoch boundary."""
        if self.collect_curves and self.monitors:
            self.epoch_curves.append(self.monitors[0].miss_curve())
        self.policy.epoch(now)
        stall = getattr(self.policy, "pending_stall", 0)
        if stall:
            for core in self.cores:
                core.time += stall
            self.policy.pending_stall = 0

    def _end_warmup(self) -> None:
        """Discard warmup statistics; the measured window starts here."""
        self.stats.reset_counters()
        self.memory.reset_statistics()
        # The energy window restarts at the global minimum time: every
        # later policy event (epochs, transitions) happens at or after
        # it, keeping the static integration monotonic.
        now = min(core.time for core in self.cores)
        self.energy.reset_window(now)
        hierarchy = self.hierarchy
        n = self.config.n_cores
        hierarchy.l1_hits = [0] * n
        hierarchy.l1_misses = [0] * n
        hierarchy.l1_writebacks = [0] * n

    def _collect(self, end_cycle: int) -> RunResult:
        if self.collect_curves and self.monitors:
            # Guarantee at least one curve even for sub-epoch runs, and
            # capture the tail epoch's behaviour.
            self.epoch_curves.append(self.monitors[0].miss_curve())
        stats = self.stats
        core_results = [
            CoreResult(
                benchmark=core.benchmark,
                instructions=core.frozen_instructions,
                cycles=core.frozen_cycles,
                llc_demand_accesses=stats.demand_accesses[core.core_id],
                llc_demand_misses=stats.demand_misses(core.core_id),
            )
            for core in self.cores
        ]
        window_instructions = sum(
            core.instructions - core.instr_base for core in self.cores
        )
        window_cycles = end_cycle - self.energy.window_start
        return RunResult(
            policy=self.policy.name,
            cores=core_results,
            dynamic_energy_nj=self.energy.dynamic_nj,
            static_energy_nj=self.energy.static_nj,
            average_active_ways=self.energy.average_active_ways,
            average_ways_probed=stats.average_ways_probed(),
            end_cycle=end_cycle,
            memory_reads=self.memory.reads,
            memory_writebacks=self.memory.writebacks,
            policy_stats=stats,
            window_instructions=window_instructions,
            window_cycles=window_cycles,
            epoch_curves=self.epoch_curves,
        )


def _core_time(core: CoreState) -> int:
    return core.time
