"""Trace-driven CMP simulation engine.

``config`` holds the Table 2 system descriptions (paper-scale and the
scaled-down variants the benchmark harness uses), ``cpu`` the per-core
execution state, ``simulator`` the multi-core interleaved loop with
epoch-based partitioning, ``stats`` the result records, and ``runner``
the experiment driver (alone-run caching, group sweeps,
normalisation) that the benchmarks and examples build on.
"""

from repro.sim.config import SystemConfig
from repro.sim.runner import AloneResult, ExperimentRunner, get_shared_runner
from repro.sim.simulator import CMPSimulator
from repro.sim.stats import CoreResult, RunResult

__all__ = [
    "AloneResult",
    "CMPSimulator",
    "CoreResult",
    "ExperimentRunner",
    "RunResult",
    "SystemConfig",
    "get_shared_runner",
]
